#include <gtest/gtest.h>

#include "atpg/fault_sim.h"
#include "atpg/podem.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

/// Confirm a generated cube really detects the fault (fill X with 0s and run
/// the fault simulator).
bool cube_detects(const Netlist& nl, const TestContext& ctx,
                  const TestCube& cube, const TdfFault& fault) {
  Pattern p;
  p.s1 = cube.s1;
  for (auto& b : p.s1) {
    if (b == kBitX) b = 0;
  }
  FaultSimulator fsim(nl, ctx);
  fsim.load_batch(std::span<const Pattern>(&p, 1));
  return fsim.detect_mask(fault) != 0;
}

TEST(Podem, DetectsSimpleStemFault) {
  Netlist nl = test::tiny_netlist();
  const TestContext ctx = TestContext::for_domain(nl, 0);
  Podem podem(nl, ctx);
  // Slow-to-fall on n1 (output of gate 0): frame1 n1=1, frame2 n1=0,
  // stuck-at-1 must reach a flop.
  const TdfFault fault{nl.gate(0).out, FaultSite::kStem, kNullId, 0,
                       TdfType::kSlowToFall};
  TestCube cube;
  ASSERT_EQ(podem.generate(fault, cube), PodemStatus::kDetected);
  EXPECT_TRUE(cube_detects(nl, ctx, cube, fault));
  EXPECT_GT(cube.care_bits(), 0u);
}

TEST(Podem, PiConeFaultUntestable) {
  // PIs are held constant during test: a fault on a PI-driven net can never
  // launch a transition.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId q = nl.add_net("q");
  const NetId n1 = nl.add_net("n1");
  const NetId d = nl.add_net("d");
  const NetId ins[] = {a};
  nl.add_gate(CellType::kInv, ins, n1);
  const NetId ins2[] = {n1, q};
  nl.add_gate(CellType::kAnd2, ins2, d);
  nl.add_flop(d, q, 0, 0);
  nl.finalize();
  const TestContext ctx = TestContext::for_domain(nl, 0);
  Podem podem(nl, ctx);
  const TdfFault fault{n1, FaultSite::kStem, kNullId, 0, TdfType::kSlowToRise};
  TestCube cube;
  EXPECT_EQ(podem.generate(fault, cube), PodemStatus::kUntestable);
}

TEST(Podem, UnobservableFaultUntestable) {
  // A fault whose only path of effect leads to a PO (not strobed) and to no
  // flop is untestable.
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId n1 = nl.add_net("n1");
  const NetId d = nl.add_net("d");
  const NetId po = nl.add_net("po");
  const NetId ins[] = {q};
  nl.add_gate(CellType::kInv, ins, n1);
  const NetId ins2[] = {n1};
  nl.add_gate(CellType::kBuf, ins2, po);
  nl.mark_output(po);
  const NetId ins3[] = {q};
  nl.add_gate(CellType::kBuf, ins3, d);
  nl.add_flop(d, q, 0, 0);
  nl.finalize();
  const TestContext ctx = TestContext::for_domain(nl, 0);
  Podem podem(nl, ctx);
  const TdfFault fault{po, FaultSite::kStem, kNullId, 0, TdfType::kSlowToRise};
  TestCube cube;
  EXPECT_EQ(podem.generate(fault, cube), PodemStatus::kUntestable);
}

TEST(Podem, HeldDomainFaultUntestableInOtherSession) {
  // tiny_soc has domains 0 and 1. In a domain-0 session, logic fed solely by
  // held domain-1 flops cannot launch.
  const Netlist& nl = test::tiny_soc().netlist;
  const TestContext ctx0 = TestContext::for_domain(nl, 0);
  Podem podem(nl, ctx0);
  // Find a domain-1 flop's Q stem fault whose value cannot change between
  // frames (held). It may still be untestable or testable through domain-0
  // cones; just assert PODEM terminates with a definite status.
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (nl.flop(f).domain != 1) continue;
    const TdfFault fault{nl.flop(f).q, FaultSite::kStem, kNullId, 0,
                         TdfType::kSlowToRise};
    TestCube cube;
    EXPECT_EQ(podem.generate(fault, cube), PodemStatus::kUntestable)
        << "held flop cannot launch a transition on its own Q";
    break;
  }
}

struct PodemRig {
  const Netlist& nl = test::tiny_soc().netlist;
  TestContext ctx = TestContext::for_domain(nl, 0);
  std::vector<TdfFault> faults = collapse_faults(nl, enumerate_faults(nl));
};

TEST(Podem, GeneratedCubesAlwaysDetectTheirTarget) {
  PodemRig rig;
  Podem podem(rig.nl, rig.ctx, PodemOptions{48});
  Rng rng(21);
  int detected = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const auto& fault = rig.faults[rng.below(rig.faults.size())];
    TestCube cube;
    if (podem.generate(fault, cube) == PodemStatus::kDetected) {
      ++detected;
      ASSERT_TRUE(cube_detects(rig.nl, rig.ctx, cube, fault))
          << describe_fault(rig.nl, fault);
    }
  }
  EXPECT_GT(detected, 40);
}

TEST(Podem, ProbeAgreesWithFaultSimulator) {
  // Under full assignments the 3-valued implication is exact, so probe()
  // must agree with the bit-parallel fault simulator on every fault/pattern.
  PodemRig rig;
  Podem podem(rig.nl, rig.ctx);
  FaultSimulator fsim(rig.nl, rig.ctx);
  Rng rng(31);
  std::vector<Pattern> pats(8);
  for (auto& p : pats) {
    p.s1.resize(rig.nl.num_flops());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  }
  fsim.load_batch(pats);
  for (int trial = 0; trial < 60; ++trial) {
    const auto& fault = rig.faults[rng.below(rig.faults.size())];
    const std::uint64_t mask = fsim.detect_mask(fault);
    for (std::size_t lane = 0; lane < pats.size(); ++lane) {
      ASSERT_EQ(podem.probe(fault, pats[lane].s1), ((mask >> lane) & 1) != 0)
          << describe_fault(rig.nl, fault) << " lane " << lane;
    }
  }
}

TEST(Podem, NoFalseUntestables) {
  // Any fault PODEM calls untestable must indeed be undetected by a big
  // random pattern sample.
  PodemRig rig;
  Podem podem(rig.nl, rig.ctx, PodemOptions{48});
  FaultSimulator fsim(rig.nl, rig.ctx);
  Rng rng(41);
  std::vector<Pattern> pats(512);
  for (auto& p : pats) {
    p.s1.resize(rig.nl.num_flops());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  }
  const auto first = fsim.grade(pats, rig.faults, nullptr);
  int unt = 0;
  for (std::size_t i = 0; i < rig.faults.size(); i += 7) {
    TestCube cube;
    if (podem.generate(rig.faults[i], cube) == PodemStatus::kUntestable) {
      ++unt;
      EXPECT_EQ(first[i], FaultSimulator::kUndetected)
          << describe_fault(rig.nl, rig.faults[i])
          << " claimed untestable but a random pattern detects it";
    }
  }
  EXPECT_GT(unt, 0) << "sample should contain some untestable faults";
}

TEST(Podem, ExtendMergesCompatibleFaults) {
  PodemRig rig;
  Podem podem(rig.nl, rig.ctx);
  Rng rng(51);
  int merged_trials = 0;
  for (int trial = 0; trial < 20 && merged_trials < 5; ++trial) {
    const auto& f1 = rig.faults[rng.below(rig.faults.size())];
    const auto& f2 = rig.faults[rng.below(rig.faults.size())];
    TestCube c1, c2;
    if (podem.generate(f1, c1) != PodemStatus::kDetected) continue;
    if (podem.extend(f2, c2) != PodemStatus::kDetected) continue;
    ++merged_trials;
    // The merged cube detects BOTH faults.
    EXPECT_TRUE(cube_detects(rig.nl, rig.ctx, c2, f1));
    EXPECT_TRUE(cube_detects(rig.nl, rig.ctx, c2, f2));
    // The merge only adds assignments, never changes existing care bits.
    for (std::size_t b = 0; b < c1.s1.size(); ++b) {
      if (c1.s1[b] != kBitX) EXPECT_EQ(c2.s1[b], c1.s1[b]);
    }
  }
  EXPECT_GE(merged_trials, 3);
}

TEST(Podem, ExtendFailureRestoresState) {
  PodemRig rig;
  Podem podem(rig.nl, rig.ctx);
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    const auto& f1 = rig.faults[rng.below(rig.faults.size())];
    TestCube c1;
    if (podem.generate(f1, c1) != PodemStatus::kDetected) continue;
    // Try to extend with faults until one fails; the cube must be unchanged.
    for (int k = 0; k < 20; ++k) {
      const auto& f2 = rig.faults[rng.below(rig.faults.size())];
      TestCube c2;
      const PodemStatus st = podem.extend(f2, c2);
      if (st != PodemStatus::kDetected) {
        EXPECT_EQ(podem.cube().s1, c1.s1);
        return;
      }
      c1 = c2;  // extended; new baseline
    }
  }
  GTEST_SKIP() << "no failing extension found in sample";
}

TEST(Podem, ClearAssignmentsResets) {
  PodemRig rig;
  Podem podem(rig.nl, rig.ctx);
  TestCube cube;
  for (const auto& f : rig.faults) {
    if (podem.generate(f, cube) == PodemStatus::kDetected) break;
  }
  podem.clear_assignments();
  const TestCube after = podem.cube();
  for (auto b : after.s1) EXPECT_EQ(b, kBitX);
}

TEST(Podem, AbortedOnTinyBacktrackLimit) {
  PodemRig rig;
  Podem strict(rig.nl, rig.ctx, PodemOptions{0});
  Rng rng(71);
  int aborted = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto& fault = rig.faults[rng.below(rig.faults.size())];
    TestCube cube;
    if (strict.generate(fault, cube) == PodemStatus::kAborted) ++aborted;
  }
  EXPECT_GT(aborted, 0) << "a zero-backtrack budget must abort hard faults";
}

}  // namespace
}  // namespace scap
