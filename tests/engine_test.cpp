#include <gtest/gtest.h>

#include <bit>

#include "atpg/engine.h"
#include "atpg/fault_sim.h"
#include "test_helpers.h"

namespace scap {
namespace {

struct EngineRig {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  TestContext ctx = TestContext::for_domain(nl, 0);
  std::vector<TdfFault> faults = collapse_faults(nl, enumerate_faults(nl));
};

TEST(AtpgEngine, ReachesReasonableCoverage) {
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions opt;
  const AtpgResult res = engine.run(rig.faults, opt);
  EXPECT_GT(res.patterns.size(), 0u);
  EXPECT_GT(res.stats.fault_coverage(), 0.40);
  EXPECT_GE(res.stats.test_coverage(), res.stats.fault_coverage());
  EXPECT_EQ(res.stats.total_faults, rig.faults.size());
}

TEST(AtpgEngine, CoverageCreditsSumToDetected) {
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions opt;
  const AtpgResult res = engine.run(rig.faults, opt);
  std::size_t credited = 0;
  for (auto c : res.new_detects_per_pattern) credited += c;
  EXPECT_EQ(credited, res.stats.detected);
  EXPECT_EQ(res.new_detects_per_pattern.size(), res.patterns.size());
  EXPECT_EQ(res.care_bits_per_pattern.size(), res.patterns.size());
}

TEST(AtpgEngine, RegradeConfirmsDetections) {
  // Independent regrade of the produced pattern set must detect at least the
  // engine's detected count (statuses came from the same simulator).
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions opt;
  const AtpgResult res = engine.run(rig.faults, opt);
  FaultSimulator fsim(rig.nl, rig.ctx);
  const auto first = fsim.grade(res.patterns.patterns, rig.faults, nullptr);
  std::size_t detected = 0;
  for (auto i : first) detected += (i != FaultSimulator::kUndetected);
  EXPECT_EQ(detected, res.stats.detected);
}

TEST(AtpgEngine, DeterministicForSeed) {
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions opt;
  opt.seed = 12345;
  const AtpgResult a = engine.run(rig.faults, opt);
  const AtpgResult b = engine.run(rig.faults, opt);
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns.patterns[i].s1, b.patterns.patterns[i].s1);
  }
}

TEST(AtpgEngine, FillModeChangesPatterns) {
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions r;
  r.fill = FillMode::kRandom;
  AtpgOptions z;
  z.fill = FillMode::kFill0;
  const AtpgResult pr = engine.run(rig.faults, r);
  const AtpgResult pz = engine.run(rig.faults, z);
  // fill-0 patterns carry far fewer 1s than random-fill patterns.
  auto ones = [](const PatternSet& ps) {
    std::size_t n = 0;
    for (const auto& p : ps.patterns) {
      for (auto b : p.s1) n += b;
    }
    return n;
  };
  EXPECT_LT(ones(pz.patterns), ones(pr.patterns));
}

TEST(AtpgEngine, TargetBlockRestrictionHonored) {
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions opt;
  opt.target_blocks.assign(rig.nl.block_count(), 0);
  opt.target_blocks[0] = 1;  // only B1
  std::vector<FaultStatus> status;
  const AtpgResult res = engine.run(rig.faults, opt, &status);
  // Untestable marks may only appear on B1 faults (only they were targeted).
  for (std::size_t i = 0; i < rig.faults.size(); ++i) {
    if (status[i] == FaultStatus::kUntestable ||
        status[i] == FaultStatus::kAborted) {
      EXPECT_EQ(fault_block(rig.nl, rig.faults[i]), 0);
    }
  }
  // And B1 coverage should be decent while the engine never targeted B5.
  std::size_t b1_detected = 0, b1_total = 0;
  for (std::size_t i = 0; i < rig.faults.size(); ++i) {
    if (fault_block(rig.nl, rig.faults[i]) != 0) continue;
    ++b1_total;
    b1_detected += (status[i] == FaultStatus::kDetected);
  }
  EXPECT_GT(b1_detected, b1_total / 4);
}

TEST(AtpgEngine, StatusThreadsAcrossRuns) {
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  std::vector<FaultStatus> status;

  AtpgOptions step1;
  step1.target_blocks.assign(rig.nl.block_count(), 0);
  step1.target_blocks[0] = 1;
  const AtpgResult r1 = engine.run(rig.faults, step1, &status);
  const std::size_t detected_after_1 = r1.stats.detected;

  AtpgOptions step2;
  step2.target_blocks.assign(rig.nl.block_count(), 0);
  step2.target_blocks[4] = 1;  // B5
  const AtpgResult r2 = engine.run(rig.faults, step2, &status);
  EXPECT_GE(r2.stats.detected, detected_after_1);
  // Step 2 must not re-credit step-1 detections.
  std::size_t credited2 = 0;
  for (auto c : r2.new_detects_per_pattern) credited2 += c;
  EXPECT_EQ(r2.stats.detected - detected_after_1, credited2);
}

TEST(AtpgEngine, PerBlockFillApplied) {
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions opt;
  opt.per_block_fill.assign(rig.nl.block_count(), FillMode::kFill0);
  opt.per_block_fill[1] = FillMode::kFill1;  // B2 filled with 1s
  opt.target_blocks.assign(rig.nl.block_count(), 0);
  opt.target_blocks[0] = 1;  // target B1 only -> B2 bits are all X -> fill-1
  const AtpgResult res = engine.run(rig.faults, opt);
  ASSERT_GT(res.patterns.size(), 0u);
  // Count fill values in untargeted blocks: B2 flops should be mostly 1.
  std::size_t b2_ones = 0, b2_bits = 0;
  for (const auto& p : res.patterns.patterns) {
    for (FlopId f = 0; f < rig.nl.num_flops(); ++f) {
      if (rig.nl.flop(f).block == 1) {
        ++b2_bits;
        b2_ones += p.s1[f];
      }
    }
  }
  EXPECT_GT(b2_ones, (9 * b2_bits) / 10);
}

TEST(AtpgEngine, CompactionReducesPatternCount) {
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions with;
  with.compaction_limit = 16;
  AtpgOptions without;
  without.compaction_limit = 0;
  const AtpgResult a = engine.run(rig.faults, with);
  const AtpgResult b = engine.run(rig.faults, without);
  EXPECT_LT(a.patterns.size(), b.patterns.size());
}

TEST(AtpgEngine, CubesLeaveDontCareBitsToFill) {
  // The paper's Section 3.1 leverage: ATPG cubes specify only a fraction of
  // the scan cells, so the fill policy controls most of the switching. Check
  // that X density is substantial overall and varies across the set (greedy
  // compaction makes some patterns far denser than others).
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions opt;
  const AtpgResult res = engine.run(rig.faults, opt);
  ASSERT_GT(res.patterns.size(), 10u);
  std::size_t total_care = 0, densest = 0, sparsest = SIZE_MAX;
  for (std::size_t c : res.care_bits_per_pattern) {
    total_care += c;
    densest = std::max(densest, c);
    sparsest = std::min(sparsest, c);
  }
  const std::size_t total_bits = res.patterns.size() * rig.nl.num_flops();
  EXPECT_LT(total_care, total_bits / 2) << "most scan bits should be X";
  EXPECT_GT(densest, 2 * std::max<std::size_t>(sparsest, 1));
}

TEST(AtpgEngine, NDetectRaisesDetectionMultiplicity) {
  EngineRig rig;
  AtpgEngine engine(rig.nl, rig.ctx);
  AtpgOptions once;
  once.n_detect = 1;
  AtpgOptions thrice;
  thrice.n_detect = 3;
  const AtpgResult r1 = engine.run(rig.faults, once);
  const AtpgResult r3 = engine.run(rig.faults, thrice);
  EXPECT_GT(r3.patterns.size(), r1.patterns.size());
  // Coverage (>= 1 detection) must not drop.
  EXPECT_GE(r3.stats.detected + 5, r1.stats.detected);

  // Count detections per fault across the n=3 set.
  FaultSimulator fsim(rig.nl, rig.ctx);
  std::vector<std::uint32_t> count(rig.faults.size(), 0);
  const auto& pats = r3.patterns.patterns;
  for (std::size_t base = 0; base < pats.size(); base += 64) {
    const std::size_t n = std::min<std::size_t>(64, pats.size() - base);
    fsim.load_batch(std::span<const Pattern>(pats.data() + base, n));
    for (std::size_t i = 0; i < rig.faults.size(); ++i) {
      count[i] += static_cast<std::uint32_t>(
          std::popcount(fsim.detect_mask(rig.faults[i])));
    }
  }
  std::size_t detected = 0, satisfied = 0;
  for (std::size_t i = 0; i < rig.faults.size(); ++i) {
    if (count[i] == 0) continue;
    ++detected;
    satisfied += (count[i] >= 3);
  }
  ASSERT_GT(detected, 0u);
  EXPECT_GT(satisfied * 10, detected * 7)
      << "most detected faults should reach 3 detections";
}

}  // namespace
}  // namespace scap
