// scap-lint subsystem tests: each corrupted fixture must report exactly the
// injected violation (right rule id, right severity, right location), the
// clean fixtures must report nothing, and the JSON / SARIF emitters must
// round-trip through the obs/json.h reader.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/baseline.h"
#include "lint/lint.h"
#include "netlist/netlist.h"
#include "netlist/verilog.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "soc/generator.h"

namespace scap {
namespace {

using lint::LintConfig;
using lint::LintInput;
using lint::LintReport;
using lint::Severity;

Severity severity_of(const LintReport& rep, std::string_view rule) {
  for (const auto& d : rep.diagnostics) {
    if (d.rule == rule) return d.severity;
  }
  ADD_FAILURE() << "no diagnostic for rule " << rule;
  return Severity::kInfo;
}

const lint::Diagnostic& diag_of(const LintReport& rep, std::string_view rule) {
  for (const auto& d : rep.diagnostics) {
    if (d.rule == rule) return d;
  }
  throw std::runtime_error("no diagnostic for rule " + std::string(rule));
}

/// A minimal clean design: a -> g0 -> f0 -> g1 -> f1.
Netlist clean_netlist() {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_net("n1");
  const NetId q0 = nl.add_net("q0");
  const NetId n2 = nl.add_net("n2");
  const NetId q1 = nl.add_net("q1");
  const NetId in0[] = {a};
  nl.add_gate(CellType::kBuf, in0, n1);
  nl.add_flop(n1, q0, /*domain=*/0, /*block=*/0);
  const NetId in1[] = {q0};
  nl.add_gate(CellType::kBuf, in1, n2);
  nl.add_flop(n2, q1, /*domain=*/0, /*block=*/0);
  nl.mark_output(q1);
  return nl;
}

// ---------------------------------------------------------------------------
// Corrupted fixtures: exactly one rule fires, with the injected location.
// ---------------------------------------------------------------------------

TEST(LintFixtures, InjectedCombLoop) {
  // a AND y -> x, x BUF -> y: a two-gate cycle fed by a primary input.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  const NetId in0[] = {a, y};
  nl.add_gate(CellType::kAnd2, in0, x);
  const NetId in1[] = {x};
  nl.add_gate(CellType::kBuf, in1, y);
  nl.mark_output(x);
  nl.mark_output(y);

  const LintReport rep = lint::run(nl);
  ASSERT_EQ(rep.count(lint::rule::kCombLoop), 1u) << lint::to_text(rep);
  EXPECT_EQ(severity_of(rep, lint::rule::kCombLoop), Severity::kError);
  const auto& d = diag_of(rep, lint::rule::kCombLoop);
  EXPECT_EQ(d.loc.kind, "gate");
  EXPECT_EQ(d.loc.id, 0u);  // lowest gate of the cycle
  EXPECT_NE(d.message.find("b0_g0 -> b0_g1"), std::string::npos) << d.message;
  // The dataflow pass sees through the consequence: the cycle's nets cannot
  // be justified from the scan state.
  EXPECT_GE(rep.count(lint::rule::kNetUncontrollable), 2u)
      << lint::to_text(rep);
}

TEST(LintFixtures, InjectedDoubleDriver) {
  Netlist nl;
  nl.set_permissive(true);  // strict mode would throw at add_gate
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_net("y");
  const NetId in0[] = {a};
  nl.add_gate(CellType::kBuf, in0, y);
  const NetId in1[] = {b};
  nl.add_gate(CellType::kInv, in1, y);
  nl.mark_output(y);

  const LintReport rep = lint::run(nl);
  ASSERT_EQ(rep.total(), 1u) << lint::to_text(rep);
  EXPECT_EQ(rep.count(lint::rule::kNetMultiDriven), 1u);
  EXPECT_EQ(severity_of(rep, lint::rule::kNetMultiDriven), Severity::kError);
  EXPECT_EQ(rep.diagnostics[0].loc.kind, "net");
  EXPECT_EQ(rep.diagnostics[0].loc.name, "y");
  EXPECT_NE(rep.diagnostics[0].message.find("2 drivers"), std::string::npos);
}

TEST(LintFixtures, InjectedFloatingInput) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId fl = nl.add_net("fl");  // never driven
  const NetId y = nl.add_net("y");
  const NetId in0[] = {a, fl};
  nl.add_gate(CellType::kAnd2, in0, y);
  nl.mark_output(y);

  const LintReport rep = lint::run(nl);
  ASSERT_EQ(rep.count(lint::rule::kGateFloatingInput), 1u)
      << lint::to_text(rep);
  EXPECT_EQ(severity_of(rep, lint::rule::kGateFloatingInput),
            Severity::kError);
  const auto& d = diag_of(rep, lint::rule::kGateFloatingInput);
  EXPECT_EQ(d.loc.kind, "gate");
  EXPECT_EQ(d.loc.name, "b0_g0");
  EXPECT_NE(d.message.find("input 1"), std::string::npos) << d.message;
  // Consequences the dataflow pass derives: y = AND(a, fl) can never be 1,
  // and a is unobservable through the un-sensitizable AND.
  EXPECT_EQ(rep.count(lint::rule::kNetUncontrollable), 1u)
      << lint::to_text(rep);
  EXPECT_EQ(rep.count(lint::rule::kNetUnobservable), 1u);
}

TEST(LintFixtures, InjectedBrokenScanChain) {
  Netlist nl = clean_netlist();
  nl.finalize();
  // Flop 1 is left off every chain.
  const std::vector<std::vector<FlopId>> chains = {{0}};

  LintInput in;
  in.netlist = &nl;
  in.scan_chains = chains;
  const LintReport rep = lint::run(in);
  ASSERT_EQ(rep.total(), 1u) << lint::to_text(rep);
  EXPECT_EQ(rep.count(lint::rule::kScanMissingFlop), 1u);
  EXPECT_EQ(severity_of(rep, lint::rule::kScanMissingFlop), Severity::kError);
  EXPECT_EQ(rep.diagnostics[0].loc.kind, "flop");
  EXPECT_EQ(rep.diagnostics[0].loc.id, 1u);
}

TEST(LintFixtures, InjectedCrossDomainCapture) {
  // A domain-1 flop's output feeds the D cone of a domain-0 flop.
  Netlist nl;
  nl.set_domain_count(2);
  const NetId a = nl.add_input("a");
  const NetId q0 = nl.add_net("q0");
  const NetId n1 = nl.add_net("n1");
  nl.add_flop(/*d=*/a, q0, /*domain=*/1, /*block=*/0);
  const NetId in0[] = {a, q0};
  nl.add_gate(CellType::kAnd2, in0, n1);
  const NetId q1 = nl.add_net("q1");
  nl.add_flop(n1, q1, /*domain=*/0, /*block=*/0);

  const LintReport rep = lint::run(nl);
  ASSERT_EQ(rep.total(), 1u) << lint::to_text(rep);
  EXPECT_EQ(rep.count(lint::rule::kCdcCombPath), 1u);
  EXPECT_EQ(severity_of(rep, lint::rule::kCdcCombPath), Severity::kWarning);
  EXPECT_EQ(rep.diagnostics[0].loc.kind, "flop");
  EXPECT_EQ(rep.diagnostics[0].loc.id, 1u);
  EXPECT_NE(rep.diagnostics[0].message.find("domain(s) 1"), std::string::npos);
}

TEST(LintFixtures, InjectedFillPolicyViolation) {
  // Two flops in two blocks; the plan's only step targets block 0, fill-0
  // applies elsewhere -- but the don't-care cell of block 1 is filled with 1.
  Netlist nl;
  nl.set_block_count(2);
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_net("n1");
  const NetId q0 = nl.add_net("q0");
  const NetId n2 = nl.add_net("n2");
  const NetId q1 = nl.add_net("q1");
  const NetId in0[] = {a};
  nl.add_gate(CellType::kBuf, in0, n1);
  nl.add_flop(n1, q0, /*domain=*/0, /*block=*/0);
  const NetId in1[] = {q0};
  nl.add_gate(CellType::kBuf, in1, n2);
  nl.add_flop(n2, q1, /*domain=*/0, /*block=*/1);
  nl.mark_output(q1);
  nl.finalize();

  PatternSet ps;
  ps.patterns.push_back(Pattern{{1, 1}});  // var 1 should be fill-0
  std::vector<TestCube> cubes(1);
  cubes[0].s1 = {1, kBitX};
  StepPlan plan;
  plan.steps.push_back(StepPlan::Step{{1, 0}, 1.0});
  const std::size_t step_start[] = {0};

  LintInput in;
  in.netlist = &nl;
  in.patterns = &ps;
  in.cubes = cubes;
  in.plan = &plan;
  in.step_start = step_start;
  in.fill_value = 0;
  const LintReport rep = lint::run(in);
  ASSERT_EQ(rep.total(), 1u) << lint::to_text(rep);
  EXPECT_EQ(rep.count(lint::rule::kFillNonconforming), 1u);
  EXPECT_EQ(severity_of(rep, lint::rule::kFillNonconforming),
            Severity::kError);
  EXPECT_EQ(rep.diagnostics[0].loc.kind, "pattern");
  EXPECT_EQ(rep.diagnostics[0].loc.id, 0u);
  EXPECT_NE(rep.diagnostics[0].message.find("untargeted block 1"),
            std::string::npos)
      << rep.diagnostics[0].message;
}

// ---------------------------------------------------------------------------
// Clean fixtures.
// ---------------------------------------------------------------------------

TEST(LintClean, HandBuiltNetlistHasNoFindings) {
  Netlist nl = clean_netlist();
  nl.finalize();
  const LintReport rep = lint::run(nl);
  EXPECT_EQ(rep.total(), 0u) << lint::to_text(rep);
}

TEST(LintClean, GeneratedSocHasNoErrors) {
  const SocDesign soc = build_soc(SocConfig::tiny());
  LintInput in;
  in.netlist = &soc.netlist;
  in.scan_chains = soc.scan.chains;
  const LintReport rep = lint::run(in);
  EXPECT_EQ(rep.errors, 0u) << lint::to_text(rep);
}

// ---------------------------------------------------------------------------
// Configuration: disables, overrides, caps.
// ---------------------------------------------------------------------------

TEST(LintConfigTest, DisabledRuleDoesNotFire) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId fl = nl.add_net("fl");
  const NetId y = nl.add_net("y");
  const NetId in0[] = {a, fl};
  nl.add_gate(CellType::kAnd2, in0, y);
  nl.mark_output(y);

  LintConfig cfg;
  cfg.disabled.emplace_back(lint::rule::kGateFloatingInput);
  const LintReport rep = lint::run(nl, cfg);
  EXPECT_EQ(rep.count(lint::rule::kGateFloatingInput), 0u)
      << lint::to_text(rep);
  EXPECT_EQ(rep.errors, 0u);
}

TEST(LintConfigTest, SeverityOverrideApplies) {
  Netlist nl;
  nl.set_domain_count(2);
  const NetId a = nl.add_input("a");
  const NetId q0 = nl.add_net("q0");
  const NetId n1 = nl.add_net("n1");
  nl.add_flop(a, q0, 1, 0);
  const NetId in0[] = {a, q0};
  nl.add_gate(CellType::kAnd2, in0, n1);
  const NetId q1 = nl.add_net("q1");
  nl.add_flop(n1, q1, 0, 0);

  LintConfig cfg;
  cfg.severity_overrides.emplace_back(std::string(lint::rule::kCdcCombPath),
                                      Severity::kError);
  const LintReport rep = lint::run(nl, cfg);
  ASSERT_EQ(rep.total(), 1u);
  EXPECT_EQ(rep.errors, 1u);
  EXPECT_TRUE(rep.has_errors());
}

TEST(LintConfigTest, PerRuleCapKeepsExactCounts) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId fl = nl.add_net("fl");
  for (int i = 0; i < 5; ++i) {
    std::string name = "y";
    name += std::to_string(i);  // two steps: gcc-12 -Wrestrict false positive
    const NetId y = nl.add_net(std::move(name));
    const NetId ins[] = {a, fl};
    nl.add_gate(CellType::kAnd2, ins, y);
    nl.mark_output(y);
  }
  LintConfig cfg;
  cfg.max_per_rule = 2;
  cfg.disabled.emplace_back(lint::rule::kNetUncontrollable);
  cfg.disabled.emplace_back(lint::rule::kNetUnobservable);
  const LintReport rep = lint::run(nl, cfg);
  EXPECT_EQ(rep.diagnostics.size(), 2u);
  EXPECT_EQ(rep.count(lint::rule::kGateFloatingInput), 5u);  // exact
  EXPECT_EQ(rep.errors, 5u);
  EXPECT_EQ(rep.suppressed, 3u);
}

// ---------------------------------------------------------------------------
// Netlist / parser hardening (the bugs this subsystem exposed).
// ---------------------------------------------------------------------------

TEST(LintNetlist, FinalizeRejectsMultiDriven) {
  Netlist nl;
  nl.set_permissive(true);
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_net("y");
  const NetId in0[] = {a};
  nl.add_gate(CellType::kBuf, in0, y);
  const NetId in1[] = {b};
  nl.add_gate(CellType::kInv, in1, y);
  nl.mark_output(y);
  try {
    nl.finalize();
    FAIL() << "finalize accepted a multi-driven net";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("multi-driven"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("y"), std::string::npos);
  }
}

TEST(LintNetlist, VerifyHookIsInstalled) {
  // The lint library's static registrar must have installed a hook; restore
  // whatever we displaced so other tests keep their guard.
  NetlistVerifyHook prev = set_netlist_verify_hook(nullptr);
  EXPECT_NE(prev, nullptr);
  set_netlist_verify_hook(prev);
}

TEST(LintNetlist, RelaxedParseSurvivesDoubleDriver) {
  const char* src =
      "module t (a, b, clk0, y);\n"
      "  input a;\n  input b;\n  input clk0;\n  output y;\n"
      "  wire y;\n"
      "  BUF b0_g0 (.Y(y), .A(a));\n"
      "  INV b0_g1 (.Y(y), .A(b));\n"
      "endmodule\n";
  EXPECT_THROW((void)parse_verilog(src), std::runtime_error);
  const Netlist nl = parse_verilog_relaxed(src);
  EXPECT_FALSE(nl.finalized());
  const LintReport rep = lint::run(nl);
  EXPECT_EQ(rep.count(lint::rule::kNetMultiDriven), 1u);
}

TEST(LintNetlist, ParserHandlesNonNumericClockName) {
  // "clk_late" used to escape as a bare std::invalid_argument from stoi.
  const char* src =
      "module t (a, clk0, y);\n"
      "  input a;\n  input clk0;\n  output y;\n"
      "  wire y;\n  wire d;\n"
      "  BUF b0_g0 (.Y(d), .A(a));\n"
      "  SDFF b0_f0 (.Q(y), .D(d), .CK(clk_late));\n"
      "endmodule\n";
  const Netlist nl = parse_verilog_relaxed(src);
  EXPECT_EQ(nl.flop(0).domain, 0);  // falls back to domain 0
}

TEST(LintNetlist, ParserCoversUndeclaredClockDomains) {
  // A CK connection to clk3 without a clk3 port must still be covered by
  // domain_count (flops_by_domain used to index out of bounds).
  const char* src =
      "module t (a, clk0, y);\n"
      "  input a;\n  input clk0;\n  output y;\n"
      "  wire y;\n  wire d;\n"
      "  BUF b0_g0 (.Y(d), .A(a));\n"
      "  SDFF b0_f0 (.Q(y), .D(d), .CK(clk3));\n"
      "endmodule\n";
  const Netlist nl = parse_verilog_relaxed(src);
  EXPECT_EQ(nl.domain_count(), 4);
  EXPECT_EQ(nl.flops_by_domain().at(3).size(), 1u);
}

// ---------------------------------------------------------------------------
// Emission round-trips.
// ---------------------------------------------------------------------------

LintReport fixture_report() {
  Netlist nl;
  nl.set_permissive(true);
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_net(R"(we"ird\name)");  // exercise escaping
  const NetId in0[] = {a};
  nl.add_gate(CellType::kBuf, in0, y);
  const NetId in1[] = {b};
  nl.add_gate(CellType::kInv, in1, y);
  nl.mark_output(y);
  return lint::run(nl);
}

TEST(LintEmit, JsonRoundTrip) {
  const LintReport rep = fixture_report();
  const std::string text = lint::to_json(rep);
  auto v = obs::json::parse(text);
  ASSERT_TRUE(v.has_value()) << text;
  EXPECT_EQ(v->find("tool")->string, "scap_lint");
  EXPECT_EQ(v->find("summary")->find("errors")->number, 1.0);
  const auto& diags = v->find("diagnostics")->array;
  ASSERT_EQ(diags.size(), rep.diagnostics.size());
  EXPECT_EQ(diags[0].find("rule")->string, lint::rule::kNetMultiDriven);
  EXPECT_EQ(diags[0].find("severity")->string, "error");
  EXPECT_EQ(diags[0].find("name")->string, R"(we"ird\name)");
  // parse(dump(parse(x))) == parse(x): canonical re-serialization is stable.
  auto v2 = obs::json::parse(v->dump());
  ASSERT_TRUE(v2.has_value());
  EXPECT_TRUE(*v == *v2);
}

TEST(LintEmit, SarifRoundTrip) {
  const LintReport rep = fixture_report();
  const std::string text = lint::to_sarif(rep);
  auto v = obs::json::parse(text);
  ASSERT_TRUE(v.has_value()) << text;
  EXPECT_EQ(v->find("version")->string, "2.1.0");
  const auto& runs = v->find("runs")->array;
  ASSERT_EQ(runs.size(), 1u);
  const auto* driver = runs[0].find("tool")->find("driver");
  EXPECT_EQ(driver->find("name")->string, "scap_lint");
  const auto& rules = driver->find("rules")->array;
  const auto& results = runs[0].find("results")->array;
  ASSERT_EQ(results.size(), rep.diagnostics.size());
  for (const auto& res : results) {
    EXPECT_EQ(res.find("level")->string, "error");
    const auto idx = static_cast<std::size_t>(res.find("ruleIndex")->number);
    ASSERT_LT(idx, rules.size());
    EXPECT_EQ(rules[idx].find("id")->string, res.find("ruleId")->string);
  }
  auto v2 = obs::json::parse(v->dump());
  ASSERT_TRUE(v2.has_value());
  EXPECT_TRUE(*v == *v2);
}

TEST(LintEmit, TextMentionsRuleAndHint) {
  const LintReport rep = fixture_report();
  const std::string text = lint::to_text(rep);
  EXPECT_NE(text.find("error [net-multi-driven]"), std::string::npos) << text;
  EXPECT_NE(text.find("hint:"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Baselines (tools/scap_lint --baseline) and metric export.
// ---------------------------------------------------------------------------

TEST(LintBaseline, ParseHandlesCommentsWhitespaceAndRejects) {
  std::vector<std::string> rejects;
  const lint::Baseline base = lint::Baseline::parse(
      "# header comment\n"
      "net-multi-driven|net|y\n"
      "  comb-loop|gate|b0_g0   # trailing comment\n"
      "\n"
      "not-a-fingerprint\n"
      "net-multi-driven|net|y\n",  // duplicate collapses
      &rejects);
  EXPECT_EQ(base.size(), 2u);
  EXPECT_TRUE(base.contains("net-multi-driven|net|y"));
  EXPECT_TRUE(base.contains("comb-loop|gate|b0_g0"));
  EXPECT_FALSE(base.contains("comb-loop|gate|b0_g1"));
  ASSERT_EQ(rejects.size(), 1u);
  EXPECT_EQ(rejects[0], "not-a-fingerprint");
}

TEST(LintBaseline, ApplyBaselineSuppressesOnlyKnownFindings) {
  const LintReport full = fixture_report();
  ASSERT_GE(full.total(), 1u);
  const auto& first = full.diagnostics[0];

  LintReport rep = fixture_report();
  lint::Baseline base;
  base.insert(lint::fingerprint(first));
  const std::size_t dropped = lint::apply_baseline(rep, base);
  EXPECT_GE(dropped, 1u);  // every same-fingerprint finding goes
  EXPECT_EQ(rep.total(), full.total() - dropped);
  EXPECT_EQ(rep.suppressed, full.suppressed + dropped);
  for (const auto& d : rep.diagnostics) {
    EXPECT_NE(lint::fingerprint(d), lint::fingerprint(first));
  }
}

TEST(LintBaseline, FullBaselineRoundTripSuppressesEverything) {
  LintReport rep = fixture_report();
  const std::size_t before = rep.total();
  ASSERT_GE(before, 1u);
  // serialize -> parse round trip, as --write-baseline / --baseline do.
  const lint::Baseline base =
      lint::Baseline::parse(lint::baseline_from(rep).serialize());
  EXPECT_EQ(lint::apply_baseline(rep, base), before);
  EXPECT_EQ(rep.total(), 0u);
  EXPECT_FALSE(rep.has_errors());
  EXPECT_TRUE(rep.diagnostics.empty());
  EXPECT_TRUE(rep.rule_counts.empty());
  EXPECT_EQ(rep.suppressed, before);
}

TEST(LintMetrics, ExportsPerRuleAndSuppressedCounters) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "SCAP_METRICS=0";
  auto& reg = obs::Registry::global();
  const std::uint64_t rule0 =
      reg.counter("lint.rule.net-multi-driven").value();
  const std::uint64_t sup0 = reg.counter("lint.suppressed").value();

  Netlist nl;
  nl.set_permissive(true);
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  for (int i = 0; i < 3; ++i) {
    std::string name = "y";
    name += std::to_string(i);
    const NetId y = nl.add_net(std::move(name));
    const NetId in0[] = {a};
    nl.add_gate(CellType::kBuf, in0, y);
    const NetId in1[] = {b};
    nl.add_gate(CellType::kInv, in1, y);
    nl.mark_output(y);
  }
  LintConfig cfg;
  cfg.max_per_rule = 1;  // 3 multi-driver findings, 2 capped
  const LintReport rep = lint::run(nl, cfg);
  ASSERT_EQ(rep.count(lint::rule::kNetMultiDriven), 3u) << lint::to_text(rep);

  EXPECT_EQ(reg.counter("lint.rule.net-multi-driven").value(), rule0 + 3);
  EXPECT_EQ(reg.counter("lint.suppressed").value(), sup0 + rep.suppressed);
  EXPECT_GE(rep.suppressed, 2u);
}

TEST(LintRegistry, AllRulesResolvable) {
  for (const lint::RuleInfo& r : lint::all_rules()) {
    EXPECT_EQ(lint::find_rule(r.id), &r);
    EXPECT_FALSE(r.summary.empty());
    EXPECT_FALSE(r.fix_hint.empty());
  }
  EXPECT_EQ(lint::find_rule("no-such-rule"), nullptr);
  EXPECT_GE(lint::all_rules().size(), 21u);
}

}  // namespace
}  // namespace scap
