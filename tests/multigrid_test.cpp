// Geometric multigrid PDN solver: agreement with the SOR solver and the
// dense-LU reference, irregular-topology (void / jittered) meshes, the
// PdnSpec import format, the honest-convergence contract, and bit-identity
// across SCAP_THREADS.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "layout/floorplan.h"
#include "obs/metrics.h"
#include "power/multigrid.h"
#include "power/pdn_spec.h"
#include "power/pdn_topology.h"
#include "power/power_grid.h"
#include "ref/compare.h"
#include "ref/ref_models.h"
#include "rt/thread_pool.h"
#include "util/rng.h"

namespace scap {
namespace {

/// Run fn at a pinned pool size, then restore the environment default.
template <typename Fn>
auto at_threads(std::size_t threads, Fn&& fn) {
  rt::ThreadPool::set_global_concurrency(threads);
  auto out = fn();
  rt::ThreadPool::set_global_concurrency(0);
  return out;
}

struct Loads {
  std::vector<Point> where;
  std::vector<double> amps;
};

Loads random_loads(const Rect& die, std::size_t n, std::uint64_t seed) {
  Rng r(seed);
  Loads l;
  l.where.resize(n);
  l.amps.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    l.where[i] = {r.uniform(die.x0, die.x1), r.uniform(die.y0, die.y1)};
    l.amps[i] = r.uniform(1e-3, 2e-2);
  }
  return l;
}

PowerGridOptions options_for(std::uint32_t mesh, GridSolver solver) {
  PowerGridOptions opt;
  opt.nx = mesh;
  opt.ny = mesh;
  opt.solver = solver;
  return opt;
}

TEST(Multigrid, AutoSelectsSolverBySize) {
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 8);
  const PowerGrid small(fp, options_for(48, GridSolver::kAuto));
  const PowerGrid large(fp, options_for(64, GridSolver::kAuto));
  EXPECT_EQ(small.resolved_solver(), GridSolver::kSor);
  EXPECT_EQ(large.resolved_solver(), GridSolver::kMultigrid);

  const Loads l = random_loads(fp.die(), 8, 11);
  EXPECT_EQ(small.solve(l.where, l.amps, true).solver, GridSolver::kSor);
  EXPECT_EQ(large.solve(l.where, l.amps, true).solver, GridSolver::kMultigrid);
}

TEST(Multigrid, AgreesWithSorOnUniformMesh) {
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 12);
  const PowerGrid mg_grid(fp, options_for(48, GridSolver::kMultigrid));
  const PowerGrid sor_grid(fp, options_for(48, GridSolver::kSor));
  const Loads l = random_loads(fp.die(), 24, 23);
  for (const bool rail : {true, false}) {
    const GridSolution m = mg_grid.solve(l.where, l.amps, rail);
    const GridSolution s = sor_grid.solve(l.where, l.amps, rail);
    EXPECT_TRUE(m.converged);
    EXPECT_TRUE(s.converged);
    // Multigrid needs an order of magnitude fewer (much heavier) iterations.
    EXPECT_LT(m.iterations, s.iterations);
    std::string why;
    EXPECT_TRUE(ref::compare_grid(m, s, &why)) << why;
  }
}

TEST(Multigrid, AgreesWithDenseLuOnIrregularMesh) {
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 12);
  PowerGridOptions opt = options_for(14, GridSolver::kMultigrid);
  // 14x14 = 196 nodes (minus voids) <= kDenseNodeLimit: the reference is an
  // exact direct solve, so this also bounds multigrid's absolute error.
  const PdnTopology topo = make_fuzz_topology(fp, opt, /*voids=*/2,
                                              /*jitter_frac=*/0.4, /*seed=*/7);
  ASSERT_LE(topo.active_nodes, ref::kDenseNodeLimit);
  ASSERT_LT(topo.active_nodes, static_cast<std::size_t>(14 * 14));
  const PowerGrid grid(fp.die(), opt, topo);
  const Loads l = random_loads(fp.die(), 16, 31);
  for (const bool rail : {true, false}) {
    const GridSolution m = grid.solve(l.where, l.amps, rail);
    const GridSolution r =
        ref::grid_solve_ref(fp.die(), topo, opt, l.where, l.amps, rail);
    EXPECT_TRUE(m.converged);
    EXPECT_TRUE(r.converged);
    std::string why;
    EXPECT_TRUE(ref::compare_grid(m, r, &why)) << why;
  }
}

TEST(Multigrid, VoidNodesCarryZeroDropAndLoadsSnapOut) {
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 8);
  PowerGridOptions opt = options_for(16, GridSolver::kMultigrid);
  PdnTopology topo =
      PdnTopology::uniform(16, 16, 1.0 / opt.segment_res_ohm);
  topo.punch_void(6, 6, 9, 9);
  const double gpad = 1.0 / opt.pad_res_ohm;
  for (const PowerPad& pad : fp.pads()) {
    topo.add_pad_at(fp.die(), pad.pos, pad.is_vdd, gpad);
  }
  topo.finalize();
  EXPECT_EQ(topo.active_nodes, static_cast<std::size_t>(16 * 16 - 16));
  // A node inside the void snaps to an active node.
  EXPECT_NE(topo.snap[topo.node(7, 7)], topo.node(7, 7));
  EXPECT_TRUE(topo.active[topo.snap[topo.node(7, 7)]]);

  // Inject exactly at the die center (inside the void): the current must
  // land on the surviving mesh and produce positive drops around the hole,
  // while every void node reports exactly zero.
  const PowerGrid grid(fp.die(), opt, topo);
  const Point center{500.0, 500.0};
  const double amps = 0.05;
  const GridSolution sol = grid.solve(std::span<const Point>(&center, 1),
                                      std::span<const double>(&amps, 1), true);
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.worst(), 0.0);
  for (std::uint32_t iy = 6; iy <= 9; ++iy) {
    for (std::uint32_t ix = 6; ix <= 9; ++ix) {
      EXPECT_EQ(sol.node(ix, iy), 0.0);
    }
  }
  EXPECT_GT(sol.node(5, 7), 0.0);
}

TEST(Multigrid, ResidualContractHonest) {
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 8);
  PowerGridOptions opt = options_for(96, GridSolver::kMultigrid);
  opt.max_iterations = 1;  // rig the budget so one W-cycle cannot converge
  const PowerGrid grid(fp, opt);
  const Point p{500.0, 500.0};
  const double amps = 0.1;
  const GridSolution sol = grid.solve(std::span<const Point>(&p, 1),
                                      std::span<const double>(&amps, 1), true);
  EXPECT_FALSE(sol.converged);
  EXPECT_EQ(sol.iterations, 1u);
  EXPECT_GT(sol.final_delta_v, opt.tolerance_v);
  if (obs::metrics_enabled()) {
    EXPECT_GE(
        obs::Registry::global().counter("power.grid_solve_nonconverged").value(),
        1u);
  }

  // And the converged solve drives the true equation residual orders of
  // magnitude below the one-cycle map's.
  PowerGridOptions full = options_for(96, GridSolver::kMultigrid);
  const PowerGrid grid_full(fp, full);
  const GridSolution conv = grid_full.solve(std::span<const Point>(&p, 1),
                                            std::span<const double>(&amps, 1),
                                            true);
  EXPECT_TRUE(conv.converged);
  const double res_one = grid_full.residual_inf(
      sol, std::span<const Point>(&p, 1), std::span<const double>(&amps, 1),
      true);
  const double res_conv = grid_full.residual_inf(
      conv, std::span<const Point>(&p, 1), std::span<const double>(&amps, 1),
      true);
  EXPECT_GT(res_one, 0.0);
  EXPECT_LT(res_conv, res_one * 1e-2);
}

TEST(Multigrid, BitIdenticalAcrossThreadCounts) {
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 16);
  PowerGridOptions opt = options_for(128, GridSolver::kMultigrid);
  // 128x128 with voids: the finest level crosses the parallel-sweep
  // threshold, the coarse levels stay inline -- exactly the mixed regime the
  // determinism contract has to survive.
  const PdnTopology topo = make_fuzz_topology(fp, opt, /*voids=*/3,
                                              /*jitter_frac=*/0.25,
                                              /*seed=*/5);
  const PowerGrid grid(fp.die(), opt, topo);
  const Loads l = random_loads(fp.die(), 32, 47);
  auto run = [&] {
    std::vector<GridSolution> sols;
    for (const bool rail : {true, false}) {
      sols.push_back(grid.solve(l.where, l.amps, rail));
    }
    return sols;
  };
  const auto at1 = at_threads(1, run);
  const auto at4 = at_threads(4, run);
  ASSERT_EQ(at1.size(), at4.size());
  for (std::size_t i = 0; i < at1.size(); ++i) {
    EXPECT_TRUE(at1[i].converged);
    EXPECT_EQ(at1[i].iterations, at4[i].iterations);
    EXPECT_EQ(at1[i].final_delta_v, at4[i].final_delta_v);
    ASSERT_EQ(at1[i].drop_v.size(), at4[i].drop_v.size());
    for (std::size_t k = 0; k < at1[i].drop_v.size(); ++k) {
      ASSERT_EQ(at1[i].drop_v[k], at4[i].drop_v[k]) << "node " << k;
    }
  }
}

TEST(Multigrid, LinearInTheLoad) {
  const Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 8);
  const PowerGrid grid(fp, options_for(64, GridSolver::kMultigrid));
  const Loads l = random_loads(fp.die(), 8, 53);
  std::vector<double> doubled = l.amps;
  for (double& a : doubled) a *= 2.0;
  const GridSolution one = grid.solve(l.where, l.amps, true);
  const GridSolution two = grid.solve(l.where, doubled, true);
  ASSERT_EQ(one.drop_v.size(), two.drop_v.size());
  for (std::size_t i = 0; i < one.drop_v.size(); ++i) {
    EXPECT_TRUE(ref::close_enough(2.0 * one.drop_v[i], two.drop_v[i],
                                  ref::kGridRelTol, ref::kGridAbsTolV));
  }
}

TEST(PdnSpec, RoundTripsAndBuildsTopology) {
  const std::string text =
      "# test spec\n"
      "mesh 16 16\n"
      "die 0 0 1000 1000\n"
      "segment_res_ohm 0.5\n"
      "pad_res_ohm 0.1\n"
      "jitter 0.3 7\n"
      "void 6 6 9 9\n"
      "pad vdd 0 0\n"
      "pad vdd 15 15\n"
      "pad vss 15 0\n"
      "pad vss 0 15\n"
      "source 3 12 0.02\n"
      "source 12 3 0.01\n";
  const PdnSpec spec = PdnSpec::parse(text);
  EXPECT_EQ(spec.nx, 16u);
  EXPECT_EQ(spec.voids.size(), 1u);
  EXPECT_EQ(spec.pads.size(), 4u);
  EXPECT_EQ(spec.sources.size(), 2u);

  const PdnSpec again = PdnSpec::parse(spec.serialize());
  const PdnTopology t1 = spec.topology();
  const PdnTopology t2 = again.topology();
  EXPECT_EQ(t1.active_nodes, t2.active_nodes);
  EXPECT_EQ(t1.g_h, t2.g_h);
  EXPECT_EQ(t1.g_v, t2.g_v);
  EXPECT_EQ(t1.vdd_pad_g, t2.vdd_pad_g);
  EXPECT_EQ(t1.active_nodes, static_cast<std::size_t>(16 * 16 - 16));
}

TEST(PdnSpec, RejectsMalformedInput) {
  EXPECT_THROW(PdnSpec::parse("die 0 0 1 1\n"), std::runtime_error);
  EXPECT_THROW(PdnSpec::parse("mesh 1 1\n"), std::runtime_error);
  EXPECT_THROW(PdnSpec::parse("mesh 8 8\nfrobnicate 1\n"), std::runtime_error);
  EXPECT_THROW(PdnSpec::parse("mesh 8 8\npad vdd 8 0\n"), std::runtime_error);
  EXPECT_THROW(PdnSpec::parse("mesh 8 8\npad gnd 0 0\n"), std::runtime_error);
  EXPECT_THROW(PdnSpec::parse("mesh 8 8\nsource 0 0 -1\n"),
               std::runtime_error);
  EXPECT_THROW(PdnSpec::parse("mesh 8 8\nmesh 8 8 8\n"), std::runtime_error);
  // A spec whose only pads sit on one rail has no well-posed system.
  EXPECT_THROW(PdnSpec::parse("mesh 8 8\npad vdd 0 0\n").topology(),
               std::runtime_error);
}

TEST(PdnSpec, SolvesEndToEnd) {
  PdnSpec spec = PdnSpec::parse(
      "mesh 24 24\n"
      "segment_res_ohm 0.35\n"
      "pad_res_ohm 0.08\n"
      "void 10 10 13 13\n"
      "pad vdd 0 0\npad vdd 23 23\npad vss 23 0\npad vss 0 23\n"
      "source 5 18 0.04\n"
      "source 18 5 0.02\n");
  PowerGridOptions opt;
  opt.solver = GridSolver::kMultigrid;
  const PowerGrid grid(spec.die, opt, spec.topology());
  const std::vector<Point> where = spec.source_points();
  const std::vector<double> amps = spec.source_amps();
  for (const bool rail : {true, false}) {
    const GridSolution sol = grid.solve(where, amps, rail);
    EXPECT_TRUE(sol.converged);
    EXPECT_GT(sol.worst(), 0.0);
    // The hot spot sits at the heavier source, not in the far corner.
    EXPECT_GT(sol.drop_at(spec.node_point(5, 18)),
              sol.drop_at(spec.node_point(23, 0)));
  }
}

}  // namespace
}  // namespace scap
