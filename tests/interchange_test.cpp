// Interchange writers: SDF (timing), SPEF (parasitics), pattern text I/O.
#include <gtest/gtest.h>

#include "atpg/pattern_io.h"
#include "layout/spef.h"
#include "sim/sdf.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

TEST(Sdf, HeaderAndOneCellPerGate) {
  const SocDesign& soc = test::tiny_soc();
  DelayModel dm(soc.netlist, TechLibrary::generic180(), soc.parasitics);
  const std::string sdf = to_sdf(soc.netlist, dm, "tiny");
  EXPECT_NE(sdf.find("(SDFVERSION \"3.0\")"), std::string::npos);
  EXPECT_NE(sdf.find("(DESIGN \"tiny\")"), std::string::npos);
  EXPECT_NE(sdf.find("(TIMESCALE 1ns)"), std::string::npos);
  std::size_t cells = 0, pos = 0;
  while ((pos = sdf.find("(CELL ", pos)) != std::string::npos) {
    ++cells;
    ++pos;
  }
  EXPECT_EQ(cells, soc.netlist.num_gates());
}

TEST(Sdf, IopathsCarryModelDelays) {
  Netlist nl = test::tiny_netlist();
  Floorplan fp = Floorplan::turbo_eagle_like(100.0, 4);
  Rng rng(1);
  const Placement pl = Placement::place(nl, fp, rng);
  const Parasitics par = Parasitics::extract(nl, pl, TechLibrary::generic180());
  DelayModel dm(nl, TechLibrary::generic180(), par);
  const std::string sdf = to_sdf(nl, dm);
  // Gate 0's rise delay appears verbatim (4 decimals).
  char buf[32];
  std::snprintf(buf, sizeof buf, "(%.4f:", dm.rise_ns(0));
  EXPECT_NE(sdf.find(buf), std::string::npos) << buf;
  // One IOPATH per input pin of every gate: tiny netlist has 2 NAND2s.
  std::size_t iopaths = 0, pos = 0;
  while ((pos = sdf.find("(IOPATH ", pos)) != std::string::npos) {
    ++iopaths;
    ++pos;
  }
  EXPECT_EQ(iopaths, 4u);
}

TEST(Sdf, DroopChangesEmittedDelays) {
  const SocDesign& soc = test::tiny_soc();
  const TechLibrary& lib = TechLibrary::generic180();
  DelayModel dm(soc.netlist, lib, soc.parasitics);
  const std::string nominal = to_sdf(soc.netlist, dm);
  std::vector<double> droop(soc.netlist.num_gates(), 0.2);
  dm.set_droop(lib, droop);
  const std::string derated = to_sdf(soc.netlist, dm);
  EXPECT_NE(nominal, derated);
}

TEST(Spef, HeaderAndOneDnetPerNet) {
  const SocDesign& soc = test::tiny_soc();
  const std::string spef = to_spef(soc.netlist, soc.parasitics, "tiny");
  EXPECT_NE(spef.find("*SPEF \"IEEE 1481-1998\""), std::string::npos);
  EXPECT_NE(spef.find("*C_UNIT 1 PF"), std::string::npos);
  std::size_t dnets = 0, pos = 0;
  while ((pos = spef.find("*D_NET ", pos)) != std::string::npos) {
    ++dnets;
    ++pos;
  }
  EXPECT_EQ(dnets, soc.netlist.num_nets());
}

TEST(Spef, CapsMatchExtraction) {
  Netlist nl = test::tiny_netlist();
  Floorplan fp = Floorplan::turbo_eagle_like(100.0, 4);
  Rng rng(1);
  const Placement pl = Placement::place(nl, fp, rng);
  const Parasitics par = Parasitics::extract(nl, pl, TechLibrary::generic180());
  const std::string spef = to_spef(nl, par);
  char buf[64];
  std::snprintf(buf, sizeof buf, "*D_NET n1 %.6f", par.net_load_pf(4));
  EXPECT_NE(spef.find(buf), std::string::npos) << buf;
}

struct PatternIoRig {
  const SocDesign& soc = test::tiny_soc();
  TestContext ctx = TestContext::for_domain(soc.netlist, 0);

  PatternSet random_set(std::size_t n, std::uint64_t seed,
                        const TestContext& c) {
    Rng rng(seed);
    PatternSet ps;
    ps.domain = c.domain;
    ps.patterns.resize(n);
    for (auto& p : ps.patterns) {
      p.s1.resize(c.num_vars());
      for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
    }
    return ps;
  }
};

TEST(PatternIo, RoundTrip) {
  PatternIoRig rig;
  const PatternSet orig = rig.random_set(17, 9, rig.ctx);
  const std::string text = to_pattern_text(orig, rig.ctx);
  const PatternSet back = parse_patterns(text, rig.ctx);
  ASSERT_EQ(back.size(), orig.size());
  EXPECT_EQ(back.domain, orig.domain);
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(back.patterns[i].s1, orig.patterns[i].s1) << "pattern " << i;
  }
}

TEST(PatternIo, RoundTripLos) {
  PatternIoRig rig;
  const TestContext los =
      TestContext::for_domain_los(rig.soc.netlist, 0, rig.soc.scan.chains);
  const PatternSet orig = rig.random_set(5, 10, los);
  const PatternSet back = parse_patterns(to_pattern_text(orig, los), los);
  ASSERT_EQ(back.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(back.patterns[i].s1, orig.patterns[i].s1);
  }
}

TEST(PatternIo, SchemeMismatchRejected) {
  PatternIoRig rig;
  const TestContext los =
      TestContext::for_domain_los(rig.soc.netlist, 0, rig.soc.scan.chains);
  const PatternSet orig = rig.random_set(2, 11, rig.ctx);
  const std::string text = to_pattern_text(orig, rig.ctx);
  EXPECT_THROW(parse_patterns(text, los), std::runtime_error);
}

TEST(PatternIo, WidthMismatchRejected) {
  PatternIoRig rig;
  std::string text = "Domain 0;\nScheme LOC;\nVars 3;\nPatterns 1;\n010\n";
  EXPECT_THROW(parse_patterns(text, rig.ctx), std::runtime_error);
}

TEST(PatternIo, BadCharacterRejected) {
  PatternIoRig rig;
  std::ostringstream os;
  os << "Domain 0;\nScheme LOC;\nVars " << rig.ctx.num_vars()
     << ";\nPatterns 1;\n";
  std::string row(rig.ctx.num_vars(), '0');
  row[3] = 'x';
  os << row << "\n";
  EXPECT_THROW(parse_patterns(os.str(), rig.ctx), std::runtime_error);
}

TEST(PatternIo, CountMismatchRejected) {
  PatternIoRig rig;
  const PatternSet orig = rig.random_set(3, 12, rig.ctx);
  std::string text = to_pattern_text(orig, rig.ctx);
  // Drop the last line.
  text.erase(text.rfind('\n', text.size() - 2) + 1);
  EXPECT_THROW(parse_patterns(text, rig.ctx), std::runtime_error);
}

}  // namespace
}  // namespace scap
