#include <gtest/gtest.h>

#include "power/activity.h"
#include "power/statistical.h"
#include "test_helpers.h"

namespace scap {
namespace {

struct StatRig {
  const SocDesign& soc = test::tiny_soc();
  const TechLibrary& lib = TechLibrary::generic180();
  PowerGrid grid{soc.floorplan};

  StatisticalReport run(double window_fraction, double toggle_prob = 0.30,
                        bool clock = true) {
    StatisticalOptions opt;
    opt.window_fraction = window_fraction;
    opt.toggle_prob = toggle_prob;
    opt.include_clock_tree = clock;
    return analyze_statistical(soc.netlist, soc.placement, soc.parasitics, lib,
                               soc.floorplan, grid,
                               soc.config.domain_freq_mhz,
                               &soc.clock_tree, opt);
  }
};

TEST(Statistical, Case2DoublesPower) {
  StatRig rig;
  const auto case1 = rig.run(1.0);
  const auto case2 = rig.run(0.5);
  EXPECT_NEAR(case2.chip_power_mw, 2.0 * case1.chip_power_mw,
              1e-6 * case1.chip_power_mw);
  for (std::size_t b = 0; b < case1.block_power_mw.size(); ++b) {
    EXPECT_NEAR(case2.block_power_mw[b], 2.0 * case1.block_power_mw[b],
                1e-6 * (case1.block_power_mw[b] + 1.0));
  }
}

TEST(Statistical, Case2RaisesIrDropButNotUniformly) {
  // Table 3's shape: halving the window raises IR-drop everywhere, and the
  // worst chip-level drop roughly doubles, but peripheral blocks rise less
  // than proportionally thanks to nearby pads.
  StatRig rig;
  const auto case1 = rig.run(1.0);
  const auto case2 = rig.run(0.5);
  EXPECT_GT(case2.chip_worst_vdd_v, case1.chip_worst_vdd_v);
  EXPECT_NEAR(case2.chip_worst_vdd_v, 2.0 * case1.chip_worst_vdd_v,
              0.05 * case2.chip_worst_vdd_v);
  for (std::size_t b = 0; b < case1.block_worst_vdd_v.size(); ++b) {
    EXPECT_GE(case2.block_worst_vdd_v[b], case1.block_worst_vdd_v[b]);
  }
}

TEST(Statistical, HotCentralBlockSeesWorstDrop) {
  StatRig rig;
  const auto rep = rig.run(0.5);
  const std::size_t hot = 4;  // B5
  for (std::size_t b = 0; b < rep.block_worst_vdd_v.size(); ++b) {
    if (b == hot) continue;
    EXPECT_GE(rep.block_worst_vdd_v[hot], rep.block_worst_vdd_v[b])
        << "B" << (b + 1);
  }
  // And B5 burns the most power.
  for (std::size_t b = 0; b < rep.block_power_mw.size(); ++b) {
    if (b == hot) continue;
    EXPECT_GT(rep.block_power_mw[hot], rep.block_power_mw[b]);
  }
}

TEST(Statistical, PowerScalesWithToggleProbability) {
  StatRig rig;
  const auto lo = rig.run(1.0, 0.15, /*clock=*/false);
  const auto hi = rig.run(1.0, 0.30, /*clock=*/false);
  EXPECT_NEAR(hi.chip_power_mw, 2.0 * lo.chip_power_mw,
              1e-6 * hi.chip_power_mw);
}

TEST(Statistical, ClockTreeAddsPower) {
  StatRig rig;
  const auto without = rig.run(1.0, 0.30, false);
  const auto with = rig.run(1.0, 0.30, true);
  EXPECT_GT(with.chip_power_mw, without.chip_power_mw);
  EXPECT_GE(with.chip_worst_vdd_v, without.chip_worst_vdd_v);
}

TEST(Statistical, BlockPowersSumBelowChipPower) {
  StatRig rig;
  const auto rep = rig.run(1.0);
  double sum = 0.0;
  for (double p : rep.block_power_mw) sum += p;
  EXPECT_LE(sum, rep.chip_power_mw + 1e-9);
  EXPECT_GT(sum, 0.9 * rep.chip_power_mw);  // most logic sits inside blocks
}

TEST(Statistical, BothRailsReported) {
  StatRig rig;
  const auto rep = rig.run(0.5);
  EXPECT_GT(rep.chip_worst_vdd_v, 0.0);
  EXPECT_GT(rep.chip_worst_vss_v, 0.0);
  EXPECT_TRUE(rep.rails_converged());
  // Symmetric pad geometry: rails within 20% of each other.
  EXPECT_NEAR(rep.chip_worst_vss_v, rep.chip_worst_vdd_v,
              0.2 * rep.chip_worst_vdd_v);
}

TEST(Statistical, FunctionalDropScalesSanely) {
  // The tiny SOC draws little current; its functional drop must be positive
  // and far from rail collapse. (The absolute paper-regime calibration is
  // checked on the full-size experiment in core_flow_test.)
  StatRig rig;
  const auto rep = rig.run(1.0);
  EXPECT_GT(rep.chip_worst_vdd_v, 0.0);
  EXPECT_LT(rep.chip_worst_vdd_v, 0.25 * rig.lib.vdd());
}

TEST(Activity, GateDomainsFollowFanin) {
  // A gate fed only by domain-d flops must inherit domain d.
  Netlist nl;
  const NetId q0 = nl.add_net("q0");
  const NetId q1 = nl.add_net("q1");
  const NetId n0 = nl.add_net("n0");
  const NetId d1 = nl.add_net("d1");
  const NetId i0[] = {q0, q0};
  nl.add_gate(CellType::kAnd2, i0, n0);
  const NetId i1[] = {q1, n0};
  nl.add_gate(CellType::kOr2, i1, d1);
  nl.add_flop(n0, q0, /*domain=*/1, 0);
  nl.add_flop(d1, q1, /*domain=*/0, 0);
  nl.set_domain_count(2);
  nl.finalize();
  const auto dom = assign_gate_domains(nl);
  EXPECT_EQ(dom[0], 1);  // fed by q0 only
  // Gate 1 sees one domain-0 and one domain-1 input; majority tie keeps the
  // first maximum (domain of q1 = 0 counted first).
  EXPECT_LE(dom[1], 1);
}

TEST(Activity, CoversAllGates) {
  const Netlist& nl = test::tiny_soc().netlist;
  const auto dom = assign_gate_domains(nl);
  ASSERT_EQ(dom.size(), nl.num_gates());
  for (DomainId d : dom) EXPECT_LT(d, nl.domain_count());
}

}  // namespace
}  // namespace scap
