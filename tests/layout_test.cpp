#include <gtest/gtest.h>

#include "layout/clock_tree.h"
#include "layout/floorplan.h"
#include "layout/parasitics.h"
#include "layout/placement.h"
#include "test_helpers.h"

namespace scap {
namespace {

TEST(Floorplan, BlocksInsideDieAndDisjoint) {
  const Floorplan fp = Floorplan::turbo_eagle_like(3000.0, 37);
  ASSERT_EQ(fp.block_count(), 6u);
  for (std::size_t i = 0; i < fp.block_count(); ++i) {
    const Rect& r = fp.block(i).rect;
    EXPECT_GE(r.x0, fp.die().x0);
    EXPECT_LE(r.x1, fp.die().x1);
    EXPECT_GE(r.y0, fp.die().y0);
    EXPECT_LE(r.y1, fp.die().y1);
    for (std::size_t j = i + 1; j < fp.block_count(); ++j) {
      EXPECT_FALSE(r.overlaps(fp.block(j).rect))
          << fp.block(i).name << " vs " << fp.block(j).name;
    }
  }
}

TEST(Floorplan, B5IsCentralAndLargest) {
  const Floorplan fp = Floorplan::turbo_eagle_like(3000.0, 37);
  const Rect& b5 = fp.block(4).rect;
  const Point die_center = fp.die().center();
  EXPECT_TRUE(b5.contains(die_center));
  for (std::size_t i = 0; i < fp.block_count(); ++i) {
    if (i != 4) EXPECT_GT(b5.area(), fp.block(i).rect.area());
  }
}

TEST(Floorplan, PadCountsAndPlacement) {
  const Floorplan fp = Floorplan::turbo_eagle_like(3000.0, 37);
  std::size_t vdd = 0, vss = 0;
  for (const PowerPad& p : fp.pads()) {
    (p.is_vdd ? vdd : vss) += 1;
    // Pads sit on the die periphery.
    const bool on_edge = p.pos.x == fp.die().x0 || p.pos.x == fp.die().x1 ||
                         p.pos.y == fp.die().y0 || p.pos.y == fp.die().y1;
    EXPECT_TRUE(on_edge) << "(" << p.pos.x << "," << p.pos.y << ")";
  }
  EXPECT_EQ(vdd, 37u);
  EXPECT_EQ(vss, 37u);
}

TEST(Floorplan, BlockAtLookup) {
  const Floorplan fp = Floorplan::turbo_eagle_like(3000.0, 37);
  EXPECT_EQ(fp.block_at(fp.block(4).rect.center()), 4u);
  EXPECT_EQ(fp.block_at(fp.block(0).rect.center()), 0u);
  // Die corner is outside every block.
  EXPECT_EQ(fp.block_at({1.0, 1.0}), fp.block_count());
}

TEST(Placement, InstancesInsideTheirBlocks) {
  const SocDesign& soc = test::tiny_soc();
  const Floorplan& fp = soc.floorplan;
  for (FlopId f = 0; f < soc.netlist.num_flops(); ++f) {
    const BlockId b = soc.netlist.flop(f).block;
    EXPECT_TRUE(fp.block(b).rect.contains(soc.placement.flop_pos(f)))
        << "flop " << f;
  }
  for (GateId g = 0; g < soc.netlist.num_gates(); ++g) {
    const BlockId b = soc.netlist.gate(g).block;
    const Rect& r = fp.block(b).rect;
    const Point p = soc.placement.gate_pos(g);
    // clamp() may place a gate exactly on the closed upper edge.
    EXPECT_TRUE(p.x >= r.x0 && p.x <= r.x1 && p.y >= r.y0 && p.y <= r.y1)
        << "gate " << g;
  }
}

TEST(Placement, NetDriverPositions) {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  const NetId q0 = nl.flop(0).q;
  EXPECT_EQ(soc.placement.net_driver_pos(nl, q0), soc.placement.flop_pos(0));
  const NetId g0 = nl.gate(0).out;
  EXPECT_EQ(soc.placement.net_driver_pos(nl, g0), soc.placement.gate_pos(0));
}

TEST(Parasitics, LoadsArePositiveAndComposed) {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  const TechLibrary& lib = TechLibrary::generic180();
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const double load = soc.parasitics.gate_load_pf(nl, g);
    EXPECT_GT(load, 0.0);
    // Self cap alone is a lower bound.
    EXPECT_GE(load, lib.timing(nl.gate(g).type).self_cap_pf);
  }
  EXPECT_GT(soc.parasitics.total_load_pf(), 0.0);
  EXPECT_GT(soc.parasitics.total_wirelength_um(), 0.0);
}

TEST(Parasitics, FanoutIncreasesLoad) {
  // Build: one driver with 1 sink vs one with 3 sinks at same positions.
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  std::vector<NetId> sinks;
  const NetId qi[] = {q};
  nl.add_gate(CellType::kBuf, qi, a);  // gate 0: 1 load (gate 1)
  const NetId ai[] = {a};
  nl.add_gate(CellType::kBuf, ai, b);  // gate 1 drives b
  // b feeds three inverters.
  for (int i = 0; i < 3; ++i) {
    const NetId y = nl.add_net();
    const NetId bi[] = {b};
    nl.add_gate(CellType::kInv, bi, y);
    nl.mark_output(y);
    sinks.push_back(y);
  }
  nl.add_flop(a, q, 0, 0);
  nl.finalize();

  const Floorplan fp = Floorplan::turbo_eagle_like(200.0, 4);
  Rng rng(2);
  const Placement pl = Placement::place(nl, fp, rng);
  const Parasitics par = Parasitics::extract(nl, pl, TechLibrary::generic180());
  EXPECT_GT(par.net_load_pf(b), par.net_load_pf(a));
}

TEST(ClockTree, EveryFlopHasAnArrival) {
  const SocDesign& soc = test::tiny_soc();
  for (FlopId f = 0; f < soc.netlist.num_flops(); ++f) {
    EXPECT_GT(soc.clock_tree.nominal_arrival_ns(f), 0.0) << "flop " << f;
    EXPECT_LT(soc.clock_tree.nominal_arrival_ns(f), 5.0) << "flop " << f;
  }
}

TEST(ClockTree, SkewIsSmallButNonzero) {
  const SocDesign& soc = test::tiny_soc();
  const auto by_domain = soc.netlist.flops_by_domain();
  double lo = 1e9, hi = 0.0;
  for (FlopId f : by_domain[0]) {
    lo = std::min(lo, soc.clock_tree.nominal_arrival_ns(f));
    hi = std::max(hi, soc.clock_tree.nominal_arrival_ns(f));
  }
  EXPECT_GT(hi - lo, 0.0);
  EXPECT_LT(hi - lo, 1.0);  // under a nanosecond of skew
}

TEST(ClockTree, DroopSlowsArrivals) {
  const SocDesign& soc = test::tiny_soc();
  const TechLibrary& lib = TechLibrary::generic180();
  const auto nominal = soc.clock_tree.arrivals_with_droop(lib, nullptr);
  const auto drooped = soc.clock_tree.arrivals_with_droop(
      lib, [](Point) { return 0.2; });  // 200 mV everywhere
  for (FlopId f = 0; f < soc.netlist.num_flops(); ++f) {
    EXPECT_NEAR(nominal[f], soc.clock_tree.nominal_arrival_ns(f), 1e-12);
    EXPECT_GT(drooped[f], nominal[f]);
  }
}

TEST(ClockTree, LocalizedDroopShiftsOnlyNearbyArrivals) {
  const SocDesign& soc = test::tiny_soc();
  const TechLibrary& lib = TechLibrary::generic180();
  const Rect hot = soc.floorplan.block(4).rect;  // B5 only
  const auto drooped = soc.clock_tree.arrivals_with_droop(
      lib, [&](Point p) { return hot.contains(p) ? 0.3 : 0.0; });
  bool some_shifted = false, some_stable = false;
  for (FlopId f = 0; f < soc.netlist.num_flops(); ++f) {
    const double delta = drooped[f] - soc.clock_tree.nominal_arrival_ns(f);
    if (delta > 1e-6) some_shifted = true;
    if (delta < 1e-9) some_stable = true;
  }
  EXPECT_TRUE(some_shifted);
  EXPECT_TRUE(some_stable);
}

TEST(ClockTree, DomainCapsPositiveForPopulatedDomains) {
  const SocDesign& soc = test::tiny_soc();
  const auto by_domain = soc.netlist.flops_by_domain();
  for (DomainId d = 0; d < soc.netlist.domain_count(); ++d) {
    if (by_domain[d].empty()) continue;
    EXPECT_GT(soc.clock_tree.domain_clock_cap_pf(d), 0.0) << "domain " << int(d);
  }
}

TEST(ClockTree, BuffersBelongToDomains) {
  const SocDesign& soc = test::tiny_soc();
  for (const ClockBuffer& b : soc.clock_tree.buffers()) {
    EXPECT_LT(b.domain, soc.netlist.domain_count());
    EXPECT_GE(b.cell_delay_ns, 0.0);
    if (b.parent != kNullId) {
      EXPECT_LT(b.parent, soc.clock_tree.buffer_count());
    }
  }
}

}  // namespace
}  // namespace scap
