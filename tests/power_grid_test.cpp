#include <gtest/gtest.h>

#include <algorithm>

#include "layout/floorplan.h"
#include "obs/metrics.h"
#include "power/power_grid.h"

namespace scap {
namespace {

struct GridRig {
  Floorplan fp = Floorplan::turbo_eagle_like(1000.0, 8);
  PowerGridOptions opt;
  GridRig() {
    opt.nx = 24;
    opt.ny = 24;
  }
};

TEST(PowerGrid, ZeroCurrentZeroDrop) {
  GridRig rig;
  PowerGrid grid(rig.fp, rig.opt);
  const GridSolution sol = grid.solve({}, {}, true);
  EXPECT_TRUE(sol.converged);
  EXPECT_DOUBLE_EQ(sol.worst(), 0.0);
}

TEST(PowerGrid, CenterInjectionDropsMostAtCenter) {
  GridRig rig;
  PowerGrid grid(rig.fp, rig.opt);
  const Point center{500.0, 500.0};
  const double amps = 0.1;
  const GridSolution sol =
      grid.solve(std::span<const Point>(&center, 1),
                 std::span<const double>(&amps, 1), true);
  ASSERT_TRUE(sol.converged);
  EXPECT_GT(sol.worst(), 0.0);
  // The injection snaps to the nearest mesh node; the bilinear sample at
  // the exact center is slightly below the nodal worst.
  EXPECT_GT(sol.drop_at(center), 0.6 * sol.worst());
  // Drop decays toward the pad ring.
  EXPECT_LT(sol.drop_at({10.0, 10.0}), 0.5 * sol.worst());
}

TEST(PowerGrid, Linearity) {
  GridRig rig;
  PowerGrid grid(rig.fp, rig.opt);
  const Point p1{300.0, 600.0}, p2{700.0, 200.0};
  const double i1 = 0.05, i2 = 0.08;

  const GridSolution a = grid.solve(std::span<const Point>(&p1, 1),
                                    std::span<const double>(&i1, 1), true);
  const GridSolution b = grid.solve(std::span<const Point>(&p2, 1),
                                    std::span<const double>(&i2, 1), true);
  const Point both_p[] = {p1, p2};
  const double both_i[] = {i1, i2};
  const GridSolution ab = grid.solve(both_p, both_i, true);

  for (std::size_t i = 0; i < ab.drop_v.size(); i += 37) {
    EXPECT_NEAR(ab.drop_v[i], a.drop_v[i] + b.drop_v[i], 1e-5);
  }
}

TEST(PowerGrid, DropScalesWithCurrent) {
  GridRig rig;
  PowerGrid grid(rig.fp, rig.opt);
  const Point p{500.0, 500.0};
  const double i1 = 0.05, i2 = 0.10;
  const GridSolution a = grid.solve(std::span<const Point>(&p, 1),
                                    std::span<const double>(&i1, 1), true);
  const GridSolution b = grid.solve(std::span<const Point>(&p, 1),
                                    std::span<const double>(&i2, 1), true);
  EXPECT_NEAR(b.worst(), 2.0 * a.worst(), 1e-5);
}

TEST(PowerGrid, VssRailMirrorsVddGeometry) {
  // Pads alternate positions but both rails cover the ring uniformly; a
  // centered load must see nearly identical drops on both rails.
  GridRig rig;
  PowerGrid grid(rig.fp, rig.opt);
  const Point p{500.0, 500.0};
  const double amps = 0.1;
  const GridSolution vdd = grid.solve(std::span<const Point>(&p, 1),
                                      std::span<const double>(&amps, 1), true);
  const GridSolution vss = grid.solve(std::span<const Point>(&p, 1),
                                      std::span<const double>(&amps, 1), false);
  EXPECT_NEAR(vdd.worst(), vss.worst(), 0.05 * vdd.worst());
}

TEST(PowerGrid, MorePadsLowerDrop) {
  GridRig rig;
  PowerGrid sparse(Floorplan::turbo_eagle_like(1000.0, 4), rig.opt);
  PowerGrid dense(Floorplan::turbo_eagle_like(1000.0, 32), rig.opt);
  const Point p{500.0, 500.0};
  const double amps = 0.1;
  const double d_sparse = sparse
                              .solve(std::span<const Point>(&p, 1),
                                     std::span<const double>(&amps, 1), true)
                              .worst();
  const double d_dense = dense
                             .solve(std::span<const Point>(&p, 1),
                                    std::span<const double>(&amps, 1), true)
                             .worst();
  EXPECT_LT(d_dense, d_sparse);
}

TEST(GridSolution, WorstInAndAverageIn) {
  GridRig rig;
  PowerGrid grid(rig.fp, rig.opt);
  const Point p{500.0, 500.0};
  const double amps = 0.1;
  const GridSolution sol = grid.solve(std::span<const Point>(&p, 1),
                                      std::span<const double>(&amps, 1), true);
  const Rect center_box{400, 400, 600, 600};
  const Rect corner_box{0, 0, 100, 100};
  EXPECT_GT(sol.worst_in(center_box), sol.worst_in(corner_box));
  EXPECT_LE(sol.average_in(center_box), sol.worst_in(center_box));
  EXPECT_GT(sol.average_in(center_box), 0.0);
  EXPECT_NEAR(sol.worst_in(rig.fp.die()), sol.worst(), 1e-12);
}

TEST(GridSolution, BilinearSampleInterpolates) {
  GridSolution sol;
  sol.nx = 2;
  sol.ny = 2;
  sol.die = Rect{0, 0, 10, 10};
  sol.drop_v = {0.0, 1.0, 0.0, 1.0};  // gradient along x
  EXPECT_NEAR(sol.drop_at({5.0, 5.0}), 0.5, 1e-12);
  EXPECT_NEAR(sol.drop_at({0.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(sol.drop_at({10.0, 10.0}), 1.0, 1e-12);
  // Out-of-die samples clamp.
  EXPECT_NEAR(sol.drop_at({-5.0, 5.0}), 0.0, 1e-12);
  EXPECT_NEAR(sol.drop_at({15.0, 5.0}), 1.0, 1e-12);
}

TEST(PowerGrid, AsciiMapMarksAlarmRegion) {
  GridRig rig;
  PowerGrid grid(rig.fp, rig.opt);
  const Point p{500.0, 500.0};
  const double amps = 1.0;  // huge load -> alarm in the middle
  const GridSolution sol = grid.solve(std::span<const Point>(&p, 1),
                                      std::span<const double>(&amps, 1), true);
  const std::string map = PowerGrid::ascii_map(sol, 0.18);
  EXPECT_NE(map.find('#'), std::string::npos);
  EXPECT_NE(map.find(' '), std::string::npos);
  // One row per grid line (steps of 1 at 24 <= 64 columns).
  EXPECT_EQ(static_cast<std::size_t>(std::count(map.begin(), map.end(), '\n')),
            rig.opt.ny);
}

TEST(PowerGrid, ConvergenceFlagHonest) {
  GridRig rig;
  rig.opt.max_iterations = 1;  // force non-convergence
  PowerGrid grid(rig.fp, rig.opt);
  const Point p{500.0, 500.0};
  const double amps = 0.1;
  const GridSolution sol = grid.solve(std::span<const Point>(&p, 1),
                                      std::span<const double>(&amps, 1), true);
  EXPECT_FALSE(sol.converged);
  EXPECT_EQ(sol.iterations, 1u);
  // The reported residual must reflect the unfinished sweep, and the
  // non-converged solve must be visible in the metrics registry.
  EXPECT_GT(sol.final_delta_v, rig.opt.tolerance_v);
  if (obs::metrics_enabled()) {
    EXPECT_GE(
        obs::Registry::global().counter("power.grid_solve_nonconverged").value(),
        1u);
  }
}

}  // namespace
}  // namespace scap
