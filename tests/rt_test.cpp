// Unit tests for the parallel execution runtime: Chase-Lev deque invariants,
// pool scheduling, and the deterministic parallel primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "atpg/pattern.h"
#include "rt/deque.h"
#include "rt/parallel.h"
#include "rt/thread_pool.h"

namespace scap {
namespace {

TEST(Deque, OwnerLifoStealFifo) {
  int items[4] = {0, 1, 2, 3};
  rt::WorkStealingDeque<int*> dq;
  for (int& i : items) dq.push(&i);
  // Owner pops newest first.
  EXPECT_EQ(dq.pop(), &items[3]);
  // Stealers take oldest first.
  EXPECT_EQ(dq.steal(), &items[0]);
  EXPECT_EQ(dq.steal(), &items[1]);
  EXPECT_EQ(dq.pop(), &items[2]);
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(Deque, GrowsPastInitialCapacity) {
  rt::WorkStealingDeque<int*> dq(/*capacity=*/4);
  std::vector<int> items(1000);
  for (int& i : items) dq.push(&i);
  std::size_t popped = 0;
  while (dq.pop() != nullptr) ++popped;
  EXPECT_EQ(popped, items.size());
}

TEST(Deque, ConcurrentStealersConsumeEachItemOnce) {
  // The owner pushes and pops while 3 stealers race; every item must be
  // consumed exactly once in total.
  constexpr int kItems = 20000;
  std::vector<int> items(kItems);
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);
  rt::WorkStealingDeque<int*> dq;

  std::atomic<bool> done{false};
  auto consume = [&](int* p) {
    seen[static_cast<std::size_t>(p - items.data())].fetch_add(1);
  };
  std::vector<std::thread> stealers;
  for (int s = 0; s < 3; ++s) {
    stealers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* p = dq.steal()) consume(p);
      }
      while (int* p = dq.steal()) consume(p);
    });
  }
  for (int i = 0; i < kItems; ++i) {
    dq.push(&items[static_cast<std::size_t>(i)]);
    if ((i & 7) == 0) {
      if (int* p = dq.pop()) consume(p);
    }
  }
  while (int* p = dq.pop()) consume(p);
  done.store(true, std::memory_order_release);
  for (auto& t : stealers) t.join();
  while (int* p = dq.steal()) consume(p);

  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  rt::ThreadPool pool(4);
  constexpr std::size_t kChunks = 5000;
  std::vector<std::atomic<int>> hits(kChunks);
  for (auto& h : hits) h.store(0);
  pool.run_chunked(kChunks, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (std::size_t c = 0; c < kChunks; ++c) {
    ASSERT_EQ(hits[c].load(), 1) << "chunk " << c;
  }
}

TEST(ThreadPool, SerialPoolRunsInline) {
  rt::ThreadPool pool(1);
  const auto main_id = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.run_chunked(8, [&](std::size_t c) {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    order.push_back(c);
  });
  std::vector<std::size_t> expect(8);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, NestedRegionsSerializeWithoutDeadlock) {
  rt::ThreadPool::set_global_concurrency(4);
  std::atomic<int> total{0};
  rt::parallel_for(
      8,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          // Nested region: must run inline on whichever thread got here.
          rt::parallel_for(
              4, [&](std::size_t ib, std::size_t ie) {
                total.fetch_add(static_cast<int>(ie - ib));
              },
              rt::ForOptions{.grain = 1, .min_items = 1});
        }
      },
      rt::ForOptions{.grain = 1, .min_items = 1});
  EXPECT_EQ(total.load(), 8 * 4);
  rt::ThreadPool::set_global_concurrency(0);
}

TEST(ThreadPool, BackToBackJobsReuseSleepingWorkers) {
  rt::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> n{0};
    pool.run_chunked(16, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 16);
  }
}

TEST(ParallelFor, CoversRangeWithArbitraryGrain) {
  rt::ThreadPool::set_global_concurrency(4);
  for (std::size_t n : {1u, 2u, 7u, 64u, 1000u}) {
    for (std::size_t grain : {0u, 1u, 3u, 16u}) {
      std::vector<std::atomic<int>> hit(n);
      for (auto& h : hit) h.store(0);
      rt::parallel_for(
          n,
          [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
          },
          rt::ForOptions{.grain = grain, .min_items = 1});
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hit[i].load(), 1) << "n=" << n << " grain=" << grain;
      }
    }
  }
  rt::ThreadPool::set_global_concurrency(0);
}

TEST(ParallelReduce, MatchesSerialSum) {
  rt::ThreadPool::set_global_concurrency(4);
  const std::size_t n = 100000;
  const auto sum = rt::parallel_transform_reduce(
      n, /*grain=*/64, std::uint64_t{0},
      [](std::size_t b, std::size_t e) {
        std::uint64_t s = 0;
        for (std::size_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
  rt::ThreadPool::set_global_concurrency(0);
}

TEST(ParallelReduce, FloatReductionBitIdenticalAcrossThreadCounts) {
  // Awkward magnitudes make float addition order-sensitive; the ordered
  // chunk combine must erase any thread-count dependence.
  const std::size_t n = 4096;
  auto run = [&] {
    return rt::parallel_transform_reduce(
        n, /*grain=*/32, 0.0,
        [](std::size_t b, std::size_t e) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            s += (i % 3 ? 1.0e-9 : 1.0e9) * static_cast<double>(i + 1);
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  rt::ThreadPool::set_global_concurrency(1);
  const double at1 = run();
  rt::ThreadPool::set_global_concurrency(4);
  const double at4 = run();
  rt::ThreadPool::set_global_concurrency(3);
  const double at3 = run();
  rt::ThreadPool::set_global_concurrency(0);
  EXPECT_EQ(at1, at4);  // exact, not NEAR: the contract is bit-identity
  EXPECT_EQ(at1, at3);
}

TEST(ParallelInvoke, RunsBoth) {
  rt::ThreadPool::set_global_concurrency(2);
  std::atomic<int> a{0}, b{0};
  rt::parallel_invoke([&] { a.store(1); }, [&] { b.store(2); });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
  rt::ThreadPool::set_global_concurrency(0);
}

TEST(RandomPatternSet, ThreadCountInvariantAndSeedSensitive) {
  const std::size_t n = 100, vars = 57;
  rt::ThreadPool::set_global_concurrency(1);
  const PatternSet at1 = random_pattern_set(n, vars, 2007);
  rt::ThreadPool::set_global_concurrency(4);
  const PatternSet at4 = random_pattern_set(n, vars, 2007);
  const PatternSet other = random_pattern_set(n, vars, 2008);
  rt::ThreadPool::set_global_concurrency(0);

  ASSERT_EQ(at1.size(), n);
  ASSERT_EQ(at4.size(), n);
  bool any_diff_seed = false;
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_EQ(at1.patterns[p].s1.size(), vars);
    EXPECT_EQ(at1.patterns[p].s1, at4.patterns[p].s1) << "pattern " << p;
    any_diff_seed |= (at1.patterns[p].s1 != other.patterns[p].s1);
  }
  EXPECT_TRUE(any_diff_seed);
}

}  // namespace
}  // namespace scap
