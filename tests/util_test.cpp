#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/geometry.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace scap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == child());
  EXPECT_LT(same, 2);
}

TEST(Rng, JumpIsDeterministic) {
  Rng a(2007), b(2007);
  a.jump();
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, JumpMovesToDisjointSubsequence) {
  Rng base(2007);
  Rng jumped(2007);
  jumped.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (base() == jumped());
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamShardIsIteratedJump) {
  // stream(seed, k) is defined as k applications of jump() to Rng(seed).
  Rng twice(2007);
  twice.jump();
  twice.jump();
  Rng shard2 = Rng::stream(2007, 2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(twice(), shard2());
}

TEST(Rng, LongJumpDiffersFromJump) {
  Rng j(5), lj(5);
  j.jump();
  lj.long_jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (j() == lj());
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamReproducibleAndShardSensitive) {
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  Rng c = Rng::stream(42, 8);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    same += (va == c());
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamShardZeroMatchesPlainSeed) {
  Rng plain(321);
  Rng s0 = Rng::stream(321, 0);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(plain(), s0());
}

TEST(Rng, AdjacentStreamsNeverCollideShortRange) {
  // 4 shards x 1000 draws: all 4000 values distinct (a collision among
  // uniform 64-bit draws at this sample size is ~1e-13 probable, so any
  // repeat indicates overlapping subsequences).
  std::vector<std::uint64_t> all;
  for (std::uint64_t shard = 0; shard < 4; ++shard) {
    Rng r = Rng::stream(77, shard);
    for (int i = 0; i < 1000; ++i) all.push_back(r());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(Geometry, RectBasics) {
  const Rect r{0, 0, 10, 5};
  EXPECT_DOUBLE_EQ(r.width(), 10);
  EXPECT_DOUBLE_EQ(r.height(), 5);
  EXPECT_DOUBLE_EQ(r.area(), 50);
  EXPECT_EQ(r.center(), (Point{5, 2.5}));
}

TEST(Geometry, RectContainsHalfOpen) {
  const Rect r{0, 0, 10, 5};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({9.999, 4.999}));
  EXPECT_FALSE(r.contains({10, 2}));
  EXPECT_FALSE(r.contains({5, 5}));
  EXPECT_FALSE(r.contains({-0.001, 2}));
}

TEST(Geometry, RectOverlap) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.overlaps(Rect{5, 5, 15, 15}));
  EXPECT_FALSE(a.overlaps(Rect{10, 0, 20, 10}));  // share an edge only
  EXPECT_FALSE(a.overlaps(Rect{11, 11, 12, 12}));
}

TEST(Geometry, RectClamp) {
  const Rect r{0, 0, 10, 5};
  EXPECT_EQ(r.clamp({-3, 2}), (Point{0, 2}));
  EXPECT_EQ(r.clamp({20, 9}), (Point{10, 5}));
  EXPECT_EQ(r.clamp({4, 4}), (Point{4, 4}));
}

TEST(Geometry, Distances) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(euclidean({0, 0}, {3, 4}), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::array<double, 5> xs{1, 2, 3, 4, 10};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  // Sample variance of {1,2,3,4,10} = 12.5.
  EXPECT_NEAR(s.variance(), 12.5, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Quantile, Interpolates) {
  const std::array<double, 5> xs{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 0.5);
}

TEST(Quantile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.bins[0], 2u);
  EXPECT_EQ(h.bins[9], 2u);
  EXPECT_EQ(h.bins[5], 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(TextTable, TooManyCellsThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace scap
