// Serve subsystem tests: wire codecs (including adversarial truncation under
// ASan), ServeCore correctness against the core/validation.h oracles, design
// cache identity/eviction, journal round-trip + replay determinism, and a
// live Server end-to-end over real sockets (framing attacks, backpressure,
// graceful drain).
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "atpg/fault.h"
#include "atpg/fault_sim.h"
#include "core/validation.h"
#include "ref/fuzz.h"
#include "ref/scenario.h"
#include "serve/client.h"
#include "serve/core.h"
#include "serve/design_cache.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "serve/workspace_pool.h"
#include "util/kv.h"
#include "util/rng.h"

namespace scap::serve {
namespace {

// Shared expensive fixture: one small design, materialized once for every
// test in the binary (the same reason the suites share one ctest entry).
ref::Scenario make_recipe() {
  ref::Scenario sc;
  sc.name = "serve_test";
  sc.soc_seed = 17;
  sc.flops_scale = 0.1;
  sc.num_patterns = 0;
  sc.fault_sample = 24;
  return sc;
}

struct TestDesign {
  ref::Scenario recipe = make_recipe();
  std::string design_text = recipe.serialize();
  ref::ScenarioSetup setup = ref::materialize_scenario(recipe);
  std::vector<Pattern> patterns =
      random_pattern_set(6, setup.ctx.num_vars(), 5).patterns;
  double threshold_mw = 0.0;  ///< mid-range: guarantees a violate/clean mix

  TestDesign() {
    // Pick the hot-block threshold between the min and max observed SCAP so
    // both screening outcomes occur in the fixture pattern set.
    const std::vector<ScapReport> reports = scap_profile_patterns(
        setup.soc, setup.lib, setup.ctx, patterns);
    double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
    for (const ScapReport& r : reports) {
      const double mw = ScapThresholds::block_scap_mw(r, 0);
      lo = std::min(lo, mw);
      hi = std::max(hi, mw);
    }
    threshold_mw = 0.5 * (lo + hi);
  }
};

const TestDesign& fix() {
  static const TestDesign* f = new TestDesign;
  return *f;
}

Request make_request(Op op) {
  Request req;
  req.op = op;
  req.hot_block = 0;
  req.threshold_mw = fix().threshold_mw;
  req.design = fix().design_text;
  req.num_vars = static_cast<std::uint32_t>(fix().setup.ctx.num_vars());
  req.patterns = fix().patterns;
  return req;
}

ScapThresholds uniform_thresholds(double mw) {
  ScapThresholds th;
  th.block_mw.assign(fix().setup.soc.netlist.block_count(), mw);
  return th;
}

// --- wire primitives --------------------------------------------------------

TEST(Wire, ScalarRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1.25e-3);
  w.str32("hello wire");
  const std::vector<std::uint8_t> raw{1, 2, 3};
  w.bytes(raw);

  WireReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -1.25e-3);
  EXPECT_EQ(r.str32(64), "hello wire");
  const auto b = r.bytes(3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[1], 2);
  EXPECT_TRUE(r.done());
}

TEST(Wire, ReaderFailureLatches) {
  const std::vector<std::uint8_t> three{1, 2, 3};
  WireReader r(three);
  EXPECT_EQ(r.u64(), 0u);  // only 3 bytes available
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // latched: even in-bounds reads now fail
  EXPECT_FALSE(r.done());
}

TEST(Wire, Str32RejectsOversizedLength) {
  WireWriter w;
  w.u32(0xFFFFFFFFu);  // length field far beyond the buffer
  WireReader r(w.data());
  EXPECT_EQ(r.str32(1u << 20), "");
  EXPECT_FALSE(r.ok());
}

TEST(Wire, Fnv1a64KnownValue) {
  // FNV-1a("") is the offset basis; "a" one round from it.
  EXPECT_EQ(fnv1a64(std::string_view("")), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a64(std::string_view("a")), fnv1a64(std::string_view("b")));
}

// --- pattern packing --------------------------------------------------------

TEST(Protocol, PackUnpackRoundTrip) {
  const std::size_t num_vars = 13;  // deliberately not a byte multiple
  const std::vector<Pattern> pats =
      random_pattern_set(5, num_vars, 99).patterns;
  const std::vector<std::uint8_t> packed = pack_patterns(pats, num_vars);
  EXPECT_EQ(packed.size(), 5 * pattern_stride(num_vars));
  const std::vector<Pattern> back = unpack_patterns(packed, 5, num_vars);
  ASSERT_EQ(back.size(), pats.size());
  for (std::size_t i = 0; i < pats.size(); ++i) {
    EXPECT_EQ(back[i].s1, pats[i].s1) << "pattern " << i;
  }
}

// --- request codec ----------------------------------------------------------

TEST(Protocol, RequestRoundTrip) {
  for (Op op : {Op::kScreenStatic, Op::kScreenExact, Op::kScapProfile,
                Op::kFaultGrade}) {
    const Request req = make_request(op);
    const std::vector<std::uint8_t> payload = encode_request(req);
    Request out;
    std::string err;
    ASSERT_TRUE(decode_request(op, payload, &out, &err)) << err;
    EXPECT_EQ(out.op, op);
    EXPECT_EQ(out.hot_block, req.hot_block);
    EXPECT_EQ(out.threshold_mw, req.threshold_mw);
    EXPECT_EQ(out.design, req.design);
    EXPECT_EQ(out.num_vars, req.num_vars);
    ASSERT_EQ(out.patterns.size(), req.patterns.size());
    for (std::size_t i = 0; i < req.patterns.size(); ++i) {
      EXPECT_EQ(out.patterns[i].s1, req.patterns[i].s1);
    }
  }
}

// Fuzz-style: every strict prefix of a valid payload must be rejected
// cleanly (no crash, no over-read -- ASan enforces the latter), and so must
// a payload with trailing garbage.
TEST(Protocol, DecodeRejectsEveryTruncation) {
  const std::vector<std::uint8_t> payload =
      encode_request(make_request(Op::kScapProfile));
  Request out;
  std::string err;
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(decode_request(Op::kScapProfile,
                                std::span(payload.data(), len), &out, &err))
        << "prefix of length " << len << " decoded";
  }
  std::vector<std::uint8_t> extended = payload;
  extended.push_back(0);
  EXPECT_FALSE(decode_request(Op::kScapProfile, extended, &out, &err));
}

TEST(Protocol, DecodeRejectsHostileCounts) {
  Request out;
  std::string err;
  {
    // num_patterns far beyond the cap, with a payload nowhere near that size:
    // must fail before allocating.
    WireWriter w;
    w.u32(0);
    w.f64(1.0);
    w.str32("soc_seed 1\n");
    w.u32(kMaxPatterns + 1);
    w.u32(8);
    EXPECT_FALSE(decode_request(Op::kScapProfile, w.data(), &out, &err));
  }
  {
    // num_vars of zero is meaningless.
    WireWriter w;
    w.u32(0);
    w.f64(1.0);
    w.str32("soc_seed 1\n");
    w.u32(1);
    w.u32(0);
    EXPECT_FALSE(decode_request(Op::kScapProfile, w.data(), &out, &err));
  }
  {
    // Empty design recipe.
    WireWriter w;
    w.u32(0);
    w.f64(1.0);
    w.str32("");
    w.u32(0);
    w.u32(8);
    EXPECT_FALSE(decode_request(Op::kScapProfile, w.data(), &out, &err));
  }
  {
    // NaN threshold.
    WireWriter w;
    w.u32(0);
    w.f64(std::nan(""));
    w.str32("soc_seed 1\n");
    w.u32(0);
    w.u32(8);
    EXPECT_FALSE(decode_request(Op::kScreenExact, w.data(), &out, &err));
  }
}

// A design recipe that is not parseable KvDoc text must be rejected at
// decode time: it could otherwise reach the journal's "design." flattening,
// which throws on the dispatcher thread (daemon-killing, REVIEW issue).
TEST(Protocol, DecodeRejectsNonKvDocDesign) {
  Request out;
  std::string err;
  for (const char* design : {"garbage", "a 1\nvalueless\n", "dup 1\ndup 2\n"}) {
    Request req = make_request(Op::kScapProfile);
    req.design = design;
    EXPECT_FALSE(
        decode_request(Op::kScapProfile, encode_request(req), &out, &err))
        << "design '" << design << "' decoded";
  }
}

TEST(Protocol, ErrorReplyRoundTrip) {
  const Reply r = make_error(ErrCode::kDesignError, "no such design");
  EXPECT_EQ(r.op, Op::kError);
  ErrCode code{};
  std::string msg;
  ASSERT_TRUE(decode_error(r.payload, &code, &msg));
  EXPECT_EQ(code, ErrCode::kDesignError);
  EXPECT_EQ(msg, "no such design");
}

TEST(Protocol, ReplyCodecsRoundTrip) {
  {
    const std::vector<StaticScreenItem> items{{0, 1.5}, {1, 123.25}};
    std::vector<StaticScreenItem> out;
    ASSERT_TRUE(decode_static_reply(encode_static_reply(items).payload, &out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].exceeds, 0);
    EXPECT_EQ(out[0].bound_mw, 1.5);
    EXPECT_EQ(out[1].exceeds, 1);
    EXPECT_EQ(out[1].bound_mw, 123.25);
  }
  {
    ExactScreenReply r;
    r.statically_clean = 3;
    r.event_simmed = 2;
    r.violates = {0, 1, 0, 0, 1};
    ExactScreenReply out;
    ASSERT_TRUE(decode_exact_reply(encode_exact_reply(r).payload, &out));
    EXPECT_EQ(out.statically_clean, 3u);
    EXPECT_EQ(out.event_simmed, 2u);
    EXPECT_EQ(out.violates, r.violates);
  }
  {
    std::vector<ScapReport> reports(2);
    reports[0].stw_ns = 1.5;
    reports[0].period_ns = 10.0;
    reports[0].num_toggles = 42;
    reports[0].vdd_energy_pj = {1.0, 2.0};
    reports[0].vss_energy_pj = {0.5, 0.25};
    reports[0].vdd_energy_total_pj = 3.0;
    reports[0].vss_energy_total_pj = 0.75;
    reports[1] = reports[0];
    reports[1].num_toggles = 7;
    std::vector<ScapReport> out;
    ASSERT_TRUE(
        decode_profile_reply(encode_profile_reply(reports).payload, &out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].stw_ns, 1.5);
    EXPECT_EQ(out[0].vdd_energy_pj, reports[0].vdd_energy_pj);
    EXPECT_EQ(out[0].vss_energy_pj, reports[0].vss_energy_pj);
    EXPECT_EQ(out[1].num_toggles, 7u);
  }
  {
    const std::vector<std::size_t> grades{0, FaultSimulator::kUndetected, 3};
    std::vector<std::size_t> out;
    ASSERT_TRUE(decode_grade_reply(encode_grade_reply(grades).payload, &out));
    EXPECT_EQ(out, grades);
  }
}

// --- ServeCore vs the in-process oracles ------------------------------------

TEST(ServeCore, ProfileMatchesScapProfilePatterns) {
  ServeCore core;
  const Reply reply = core.execute(make_request(Op::kScapProfile));
  ASSERT_EQ(reply.op, Op::kOk);
  std::vector<ScapReport> served;
  ASSERT_TRUE(decode_profile_reply(reply.payload, &served));

  const std::vector<ScapReport> expected = scap_profile_patterns(
      fix().setup.soc, fix().setup.lib, fix().setup.ctx, fix().patterns);
  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].stw_ns, expected[i].stw_ns) << i;
    EXPECT_EQ(served[i].period_ns, expected[i].period_ns) << i;
    EXPECT_EQ(served[i].num_toggles, expected[i].num_toggles) << i;
    EXPECT_EQ(served[i].vdd_energy_pj, expected[i].vdd_energy_pj) << i;
    EXPECT_EQ(served[i].vss_energy_pj, expected[i].vss_energy_pj) << i;
    EXPECT_EQ(served[i].vdd_energy_total_pj, expected[i].vdd_energy_total_pj);
    EXPECT_EQ(served[i].vss_energy_total_pj, expected[i].vss_energy_total_pj);
  }
}

TEST(ServeCore, ExactScreenMatchesScapScreenPatterns) {
  ServeCore core;
  const Reply reply = core.execute(make_request(Op::kScreenExact));
  ASSERT_EQ(reply.op, Op::kOk);
  ExactScreenReply served;
  ASSERT_TRUE(decode_exact_reply(reply.payload, &served));

  const ScapScreenResult expected = scap_screen_patterns(
      fix().setup.soc, fix().setup.lib, fix().setup.ctx, fix().patterns,
      uniform_thresholds(fix().threshold_mw), /*hot_block=*/0);
  EXPECT_EQ(served.violates, expected.violates);
  EXPECT_EQ(served.statically_clean, expected.statically_clean);
  EXPECT_EQ(served.event_simmed, expected.event_simmed);
  // The fixture threshold sits mid-range, so both outcomes must occur.
  EXPECT_GT(served.event_simmed, 0u);
}

TEST(ServeCore, StaticScreenConsistentWithExact) {
  ServeCore core;
  const Reply sreply = core.execute(make_request(Op::kScreenStatic));
  ASSERT_EQ(sreply.op, Op::kOk);
  std::vector<StaticScreenItem> items;
  ASSERT_TRUE(decode_static_reply(sreply.payload, &items));
  ASSERT_EQ(items.size(), fix().patterns.size());

  const Reply ereply = core.execute(make_request(Op::kScreenExact));
  ExactScreenReply exact;
  ASSERT_TRUE(decode_exact_reply(ereply.payload, &exact));

  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].exceeds != 0, items[i].bound_mw > fix().threshold_mw);
    // Soundness: a statically clean pattern can never violate exactly.
    if (items[i].exceeds == 0) {
      EXPECT_EQ(exact.violates[i], 0) << i;
    }
  }
}

TEST(ServeCore, FaultGradeMatchesFaultSimulator) {
  ServeCore core;
  const Reply reply = core.execute(make_request(Op::kFaultGrade));
  ASSERT_EQ(reply.op, Op::kOk);
  std::vector<std::size_t> served;
  ASSERT_TRUE(decode_grade_reply(reply.payload, &served));

  // Same sampling recipe as the daemon / fuzz harness.
  const Netlist& nl = fix().setup.soc.netlist;
  std::vector<TdfFault> faults = collapse_faults(nl, enumerate_faults(nl));
  if (fix().recipe.fault_sample > 0 &&
      fix().recipe.fault_sample < faults.size()) {
    Rng fr(fix().recipe.fault_seed);
    std::vector<std::size_t> idx(faults.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    fr.shuffle(idx);
    std::vector<TdfFault> sample;
    for (std::size_t k = 0; k < fix().recipe.fault_sample; ++k) {
      sample.push_back(faults[idx[k]]);
    }
    faults = std::move(sample);
  }
  FaultSimulator fs(nl, fix().setup.ctx);
  EXPECT_EQ(served, fs.grade(fix().patterns, faults));
}

TEST(ServeCore, BatchRepliesMatchSingles) {
  // A mixed batch over two designs must answer every slot exactly as the
  // batch-of-one path does (batching composition never changes results).
  ref::Scenario other = fix().recipe;
  other.soc_seed = 23;

  std::vector<Request> reqs;
  reqs.push_back(make_request(Op::kScapProfile));
  reqs.push_back(make_request(Op::kScreenExact));
  reqs.push_back(make_request(Op::kScreenStatic));
  Request other_req = make_request(Op::kScreenExact);
  other_req.design = other.serialize();
  {
    const ref::ScenarioSetup s = ref::materialize_scenario(other);
    other_req.num_vars = static_cast<std::uint32_t>(s.ctx.num_vars());
    other_req.patterns =
        random_pattern_set(3, other_req.num_vars, 8).patterns;
  }
  reqs.push_back(other_req);
  reqs.push_back(make_request(Op::kFaultGrade));

  ServeCore batch_core;
  std::vector<const Request*> ptrs;
  for (const Request& r : reqs) ptrs.push_back(&r);
  std::vector<Reply> batched(reqs.size());
  batch_core.execute_batch(ptrs, batched);

  ServeCore single_core;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Reply one = single_core.execute(reqs[i]);
    EXPECT_EQ(batched[i].op, one.op) << "slot " << i;
    EXPECT_EQ(batched[i].payload, one.payload) << "slot " << i;
  }
}

TEST(ServeCore, RejectsInvalidRequests) {
  ServeCore core;
  {
    Request req = make_request(Op::kScapProfile);
    req.num_vars += 1;  // contradicts the design's context
    const Reply r = core.execute(req);
    ASSERT_EQ(r.op, Op::kError);
    ErrCode code{};
    std::string msg;
    ASSERT_TRUE(decode_error(r.payload, &code, &msg));
    EXPECT_EQ(code, ErrCode::kBadRequest);
  }
  {
    Request req = make_request(Op::kScreenExact);
    req.hot_block = 1000;  // out of range
    EXPECT_EQ(core.execute(req).op, Op::kError);
  }
  {
    Request req = make_request(Op::kScapProfile);
    req.design = "soc_seed not_a_number\n";
    const Reply r = core.execute(req);
    ASSERT_EQ(r.op, Op::kError);
    ErrCode code{};
    std::string msg;
    ASSERT_TRUE(decode_error(r.payload, &code, &msg));
    EXPECT_EQ(code, ErrCode::kDesignError);
  }
}

// --- design cache -----------------------------------------------------------

TEST(DesignCache, CanonicalKeyIgnoresPatternFields) {
  ref::Scenario a = fix().recipe;
  ref::Scenario b = fix().recipe;
  b.name = "different_name";
  b.num_patterns = 99;
  b.pattern_seed = 1234;
  b.droop = true;
  EXPECT_EQ(canonical_design_key(a), canonical_design_key(b));

  ref::Scenario c = fix().recipe;
  c.soc_seed += 1;
  EXPECT_NE(canonical_design_key(a), canonical_design_key(c));
}

TEST(DesignCache, SharesEntryAcrossEquivalentRecipes) {
  DesignCache cache(4);
  ref::Scenario variant = fix().recipe;
  variant.pattern_seed = 777;  // differs only in non-design fields
  const auto a = cache.get(fix().design_text);
  const auto b = cache.get(variant.serialize());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DesignCache, EvictsLeastRecentlyUsed) {
  DesignCache cache(1);
  const auto a = cache.get(fix().design_text);
  ref::Scenario other = fix().recipe;
  other.soc_seed = 23;
  const auto b = cache.get(other.serialize());
  EXPECT_EQ(cache.size(), 1u);
  // `a` stays alive through our shared_ptr even though evicted; re-request
  // rebuilds a fresh entry rather than resurrecting the old one.
  const auto a2 = cache.get(fix().design_text);
  EXPECT_NE(a.get(), a2.get());
  EXPECT_EQ(a->hash, a2->hash);
}

TEST(WorkspacePool, ReusesReleasedAnalyzers) {
  WorkspacePool pool(fix().setup.soc, fix().setup.lib);
  EXPECT_EQ(pool.idle(), 0u);
  const PatternAnalyzer* first = nullptr;
  {
    auto lease = pool.acquire();
    first = &lease.get();
    auto lease2 = pool.acquire();
    EXPECT_NE(&lease2.get(), first);  // concurrent leases are distinct
  }
  EXPECT_EQ(pool.idle(), 2u);
  auto lease3 = pool.acquire();
  EXPECT_EQ(pool.idle(), 1u);  // came from the freelist, not a fresh build
}

// --- journal ----------------------------------------------------------------

TEST(Journal, RecordRoundTrip) {
  JournalRecord rec;
  rec.seq = 42;
  rec.request = make_request(Op::kScreenExact);
  rec.resp_op = Op::kOk;
  rec.resp_len = 123;
  rec.resp_crc = 0xDEADBEEFCAFEF00Dull;

  const JournalRecord back = parse_record(serialize_record(rec));
  EXPECT_EQ(back.seq, rec.seq);
  EXPECT_EQ(back.request.op, rec.request.op);
  EXPECT_EQ(back.request.hot_block, rec.request.hot_block);
  EXPECT_EQ(back.request.threshold_mw, rec.request.threshold_mw);
  EXPECT_EQ(back.request.num_vars, rec.request.num_vars);
  ASSERT_EQ(back.request.patterns.size(), rec.request.patterns.size());
  for (std::size_t i = 0; i < rec.request.patterns.size(); ++i) {
    EXPECT_EQ(back.request.patterns[i].s1, rec.request.patterns[i].s1);
  }
  EXPECT_EQ(back.resp_op, rec.resp_op);
  EXPECT_EQ(back.resp_len, rec.resp_len);
  EXPECT_EQ(back.resp_crc, rec.resp_crc);
  // The embedded design must decode to the same canonical design.
  EXPECT_EQ(canonical_design_key(ref::Scenario::parse(back.request.design)),
            canonical_design_key(fix().recipe));
}

TEST(Journal, ReplayVerifiesAndDetectsCorruption) {
  ServeCore core;
  std::vector<JournalRecord> records;
  std::uint64_t seq = 0;
  for (Op op : {Op::kScapProfile, Op::kScreenStatic, Op::kScreenExact}) {
    const Request req = make_request(op);
    const Reply reply = core.execute(req);
    ASSERT_EQ(reply.op, Op::kOk);
    JournalRecord rec;
    rec.seq = seq++;
    rec.request = req;
    rec.resp_op = reply.op;
    rec.resp_len = static_cast<std::uint32_t>(reply.payload.size());
    rec.resp_crc = fnv1a64(reply.payload);
    records.push_back(std::move(rec));
  }

  ServeCore fresh;
  const ReplayResult good = replay_journal(records, fresh);
  EXPECT_EQ(good.records, records.size());
  EXPECT_EQ(good.mismatches, 0u) << good.detail;

  records[1].resp_crc ^= 1;  // single-bit corruption must be caught
  ServeCore fresh2;
  const ReplayResult bad = replay_journal(records, fresh2);
  EXPECT_EQ(bad.mismatches, 1u);
  EXPECT_FALSE(bad.detail.empty());
}

// Defense in depth behind the decode-time validation: even if an
// unserializable request somehow reaches the journal, append must swallow
// the failure (it runs on the dispatcher thread with no handler above it)
// and keep journaling later requests.
TEST(Journal, AppendSurvivesUnserializableRequest) {
  const std::string path =
      "/tmp/scap_serve_test_" + std::to_string(::getpid()) + "_skip.journal";
  ::unlink(path.c_str());
  {
    JournalWriter w(path);
    ASSERT_TRUE(w.ok());
    Request bad = make_request(Op::kScreenStatic);
    bad.design = "garbage";  // KvDoc line with no value: serialize throws
    w.append(bad, Reply{Op::kError, {}});
    EXPECT_TRUE(w.ok());
    w.append(make_request(Op::kScreenStatic), Reply{Op::kOk, {}});
  }
  std::string err;
  const std::vector<JournalRecord> records = read_journal_file(path, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(records.size(), 1u);  // only the serializable request landed
  ::unlink(path.c_str());
}

// Reopening an existing journal must continue its sequence numbers, not
// restart at 0 -- duplicate seq would make replay mismatch reports ambiguous.
TEST(Journal, SequenceContinuesAcrossReopen) {
  const std::string path =
      "/tmp/scap_serve_test_" + std::to_string(::getpid()) + "_seq.journal";
  ::unlink(path.c_str());
  const Request req = make_request(Op::kScreenStatic);
  {
    JournalWriter w(path);
    w.append(req, Reply{Op::kOk, {}});
    w.append(req, Reply{Op::kOk, {}});
  }
  {
    JournalWriter w(path);  // daemon restart with the same --journal path
    w.append(req, Reply{Op::kOk, {}});
  }
  std::string err;
  const std::vector<JournalRecord> records = read_journal_file(path, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(records.size(), 3u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);
  }
  ::unlink(path.c_str());
}

TEST(Journal, StreamRoundTripThroughText) {
  ServeCore core;
  const Request req = make_request(Op::kScapProfile);
  const Reply reply = core.execute(req);
  JournalRecord rec;
  rec.seq = 0;
  rec.request = req;
  rec.resp_op = reply.op;
  rec.resp_len = static_cast<std::uint32_t>(reply.payload.size());
  rec.resp_crc = fnv1a64(reply.payload);

  std::stringstream ss;
  ss << serialize_record(rec) << "\n" << serialize_record(rec) << "\n";
  const std::vector<JournalRecord> parsed = read_journal(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1].resp_crc, rec.resp_crc);
}

// --- live server ------------------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/scap_serve_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

struct LiveServer {
  ServerOptions opt;
  Server server;

  explicit LiveServer(ServerOptions o) : opt(std::move(o)), server(opt) {
    std::string err;
    if (!server.start(&err)) throw std::runtime_error("start: " + err);
  }
  ~LiveServer() { server.stop(); }

  Client connect() {
    std::string err;
    Client c = opt.unix_path.empty()
                   ? Client::connect_tcp("127.0.0.1", server.tcp_port(), &err)
                   : Client::connect_unix(opt.unix_path, &err);
    EXPECT_TRUE(c.connected()) << err;
    return c;
  }
};

TEST(Server, PingEchoAndZeroLengthPayload) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("ping");
  LiveServer ls(std::move(opt));
  Client c = ls.connect();

  Request ping;
  ping.op = Op::kPing;
  ping.blob = {1, 2, 3, 4};
  Reply reply;
  std::string err;
  ASSERT_TRUE(c.call(ping, &reply, &err)) << err;
  EXPECT_EQ(reply.op, Op::kOk);
  EXPECT_EQ(reply.payload, ping.blob);

  ping.blob.clear();  // zero-length payload is a legal frame
  ASSERT_TRUE(c.call(ping, &reply, &err)) << err;
  EXPECT_EQ(reply.op, Op::kOk);
  EXPECT_TRUE(reply.payload.empty());
}

TEST(Server, ServesProfileOverUnixSocket) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("profile");
  LiveServer ls(std::move(opt));
  Client c = ls.connect();

  Reply reply;
  std::string err;
  ASSERT_TRUE(c.call(make_request(Op::kScapProfile), &reply, &err)) << err;
  ASSERT_EQ(reply.op, Op::kOk);

  ServeCore core;
  const Reply direct = core.execute(make_request(Op::kScapProfile));
  EXPECT_EQ(reply.payload, direct.payload);
}

TEST(Server, ServesOverTcpLoopback) {
  ServerOptions opt;
  opt.tcp_port = 0;  // ephemeral
  LiveServer ls(std::move(opt));
  ASSERT_GT(ls.server.tcp_port(), 0);
  Client c = ls.connect();

  Request ping;
  ping.op = Op::kPing;
  ping.blob = {9};
  Reply reply;
  std::string err;
  ASSERT_TRUE(c.call(ping, &reply, &err)) << err;
  EXPECT_EQ(reply.payload, ping.blob);
}

TEST(Server, StatsExposeServeCounters) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("stats");
  LiveServer ls(std::move(opt));
  Client c = ls.connect();

  Reply reply;
  std::string err;
  ASSERT_TRUE(c.call(make_request(Op::kScreenStatic), &reply, &err)) << err;
  ASSERT_EQ(reply.op, Op::kOk);

  Request stats;
  stats.op = Op::kStats;
  ASSERT_TRUE(c.call(stats, &reply, &err)) << err;
  ASSERT_EQ(reply.op, Op::kOk);
  const util::KvDoc doc = util::KvDoc::parse(
      std::string(reply.payload.begin(), reply.payload.end()));
  EXPECT_GE(doc.get_u64("serve.requests", 0), 1u);
}

TEST(Server, BadMagicGetsErrorThenHangup) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("magic");
  LiveServer ls(std::move(opt));
  Client c = ls.connect();

  WireWriter w;
  w.u32(0x0BADF00D);  // not SCP1
  w.u16(1);
  w.u16(0);
  w.u32(0);
  ASSERT_TRUE(c.send_raw(w.data()));
  Reply reply;
  ASSERT_TRUE(c.read_reply(&reply));
  ASSERT_EQ(reply.op, Op::kError);
  ErrCode code{};
  std::string msg;
  ASSERT_TRUE(decode_error(reply.payload, &code, &msg));
  EXPECT_EQ(code, ErrCode::kBadFrame);
  EXPECT_FALSE(c.read_reply(&reply));  // server hung up after the error

  // The daemon itself must remain healthy for new connections.
  Client c2 = ls.connect();
  Request ping;
  ping.op = Op::kPing;
  std::string err;
  ASSERT_TRUE(c2.call(ping, &reply, &err)) << err;
}

TEST(Server, OversizedLengthGetsErrorThenHangup) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("oversized");
  LiveServer ls(std::move(opt));
  Client c = ls.connect();

  WireWriter w;
  w.u32(kMagic);
  w.u16(static_cast<std::uint16_t>(Op::kPing));
  w.u16(0);
  w.u32(kMaxPayload + 1);  // length the server must refuse to allocate
  ASSERT_TRUE(c.send_raw(w.data()));
  Reply reply;
  ASSERT_TRUE(c.read_reply(&reply));
  ASSERT_EQ(reply.op, Op::kError);
  ErrCode code{};
  std::string msg;
  ASSERT_TRUE(decode_error(reply.payload, &code, &msg));
  EXPECT_EQ(code, ErrCode::kOversized);
  EXPECT_FALSE(c.read_reply(&reply));
}

TEST(Server, TruncatedHeaderThenCloseLeavesServerHealthy) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("trunc");
  LiveServer ls(std::move(opt));
  {
    Client c = ls.connect();
    const std::vector<std::uint8_t> half{0x53, 0x43, 0x50};  // "SCP", cut off
    ASSERT_TRUE(c.send_raw(half));
    c.close();  // mid-header hangup
  }
  Client c2 = ls.connect();
  Request ping;
  ping.op = Op::kPing;
  Reply reply;
  std::string err;
  ASSERT_TRUE(c2.call(ping, &reply, &err)) << err;
  EXPECT_EQ(reply.op, Op::kOk);
}

TEST(Server, UnknownOpcodeGetsCleanErrorAndConnectionSurvives) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("unknown");
  LiveServer ls(std::move(opt));
  Client c = ls.connect();

  WireWriter w;
  w.u32(kMagic);
  w.u16(99);  // no such opcode
  w.u16(0);
  w.u32(0);
  ASSERT_TRUE(c.send_raw(w.data()));
  Reply reply;
  ASSERT_TRUE(c.read_reply(&reply));
  ASSERT_EQ(reply.op, Op::kError);
  ErrCode code{};
  std::string msg;
  ASSERT_TRUE(decode_error(reply.payload, &code, &msg));
  EXPECT_EQ(code, ErrCode::kUnknownOp);

  // Unlike a framing error, an unknown opcode keeps the connection usable.
  Request ping;
  ping.op = Op::kPing;
  std::string err;
  ASSERT_TRUE(c.call(ping, &reply, &err)) << err;
  EXPECT_EQ(reply.op, Op::kOk);
}

TEST(Server, MalformedComputePayloadGetsBadRequest) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("badreq");
  LiveServer ls(std::move(opt));
  Client c = ls.connect();

  WireWriter w;
  w.u32(kMagic);
  w.u16(static_cast<std::uint16_t>(Op::kScapProfile));
  w.u16(0);
  w.u32(3);
  w.u8(1);
  w.u8(2);
  w.u8(3);  // 3 bytes of garbage as the payload
  ASSERT_TRUE(c.send_raw(w.data()));
  Reply reply;
  ASSERT_TRUE(c.read_reply(&reply));
  ASSERT_EQ(reply.op, Op::kError);
  ErrCode code{};
  std::string msg;
  ASSERT_TRUE(decode_error(reply.payload, &code, &msg));
  EXPECT_EQ(code, ErrCode::kBadRequest);
}

// Regression for the daemon-killing REVIEW issue: a compute request whose
// design text is not KvDoc must bounce with kBadRequest at admission -- it
// must never be executed, journaled (where serialization would throw on the
// dispatcher thread), or crash the daemon.
TEST(Server, NonKvDocDesignRejectedWithoutKillingJournalingDaemon) {
  const std::string journal_path =
      "/tmp/scap_serve_test_" + std::to_string(::getpid()) + "_bad.journal";
  ::unlink(journal_path.c_str());
  {
    ServerOptions opt;
    opt.unix_path = test_socket_path("baddesign");
    opt.journal_path = journal_path;
    LiveServer ls(std::move(opt));
    Client c = ls.connect();

    Request bad = make_request(Op::kScreenStatic);
    bad.design = "garbage";  // a KvDoc line with no value
    const std::vector<std::uint8_t> payload = encode_request(bad);
    WireWriter frame;
    frame.u32(kMagic);
    frame.u16(static_cast<std::uint16_t>(Op::kScreenStatic));
    frame.u16(0);
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.bytes(payload);
    ASSERT_TRUE(c.send_raw(frame.data()));
    Reply reply;
    ASSERT_TRUE(c.read_reply(&reply));
    ASSERT_EQ(reply.op, Op::kError);
    ErrCode code{};
    std::string msg;
    ASSERT_TRUE(decode_error(reply.payload, &code, &msg));
    EXPECT_EQ(code, ErrCode::kBadRequest);

    // The daemon (and this very connection) must still serve valid work.
    std::string err;
    ASSERT_TRUE(c.call(make_request(Op::kScreenStatic), &reply, &err)) << err;
    EXPECT_EQ(reply.op, Op::kOk);
  }
  std::string err;
  const std::vector<JournalRecord> records =
      read_journal_file(journal_path, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(records.size(), 1u);  // only the valid request was journaled
  ServeCore fresh;
  EXPECT_EQ(replay_journal(records, fresh).mismatches, 0u);
  ::unlink(journal_path.c_str());
}

// The admission queue is bounded by decoded bytes, not just entry count: a
// tiny queue_max_bytes must trip kBusy long before queue_capacity does.
TEST(Server, ByteBoundedQueueRepliesBusy) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("bytebusy");
  opt.queue_capacity = 64;  // far above what the byte bound admits
  opt.queue_max_bytes = 1;
  LiveServer ls(std::move(opt));
  ls.server.pause_dispatch(true);

  Client a = ls.connect();
  Client b = ls.connect();
  const std::vector<std::uint8_t> payload =
      encode_request(make_request(Op::kScreenStatic));
  WireWriter frame;
  frame.u32(kMagic);
  frame.u16(static_cast<std::uint16_t>(Op::kScreenStatic));
  frame.u16(0);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.bytes(payload);

  // Admitted despite blowing the byte budget: an empty queue always accepts
  // one request so an oversized submission cannot starve.
  ASSERT_TRUE(a.send_raw(frame.data()));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(b.send_raw(frame.data()));  // over budget -> immediate kBusy
  Reply breply;
  ASSERT_TRUE(b.read_reply(&breply));
  EXPECT_EQ(breply.op, Op::kBusy);

  ls.server.pause_dispatch(false);
  Reply areply;
  ASSERT_TRUE(a.read_reply(&areply));
  EXPECT_EQ(areply.op, Op::kOk);
}

// A start() that fails after binding the Unix socket (here: unopenable
// journal path) must not strand the socket file on disk.
TEST(Server, FailedStartDoesNotStrandSocketFile) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("failstart");
  opt.journal_path = "/nonexistent_dir_for_scap_serve_test/x.journal";
  Server server(opt);
  std::string err;
  EXPECT_FALSE(server.start(&err));
  EXPECT_NE(err.find("journal"), std::string::npos) << err;
  struct stat st {};
  EXPECT_NE(::stat(opt.unix_path.c_str(), &st), 0)
      << "socket file stranded by failed start()";
}

TEST(Server, BoundedQueueRepliesBusy) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("busy");
  opt.queue_capacity = 1;
  LiveServer ls(std::move(opt));
  ls.server.pause_dispatch(true);  // hold the queue so it can fill

  Client a = ls.connect();
  Client b = ls.connect();
  const std::vector<std::uint8_t> payload =
      encode_request(make_request(Op::kScreenStatic));
  WireWriter frame;
  frame.u32(kMagic);
  frame.u16(static_cast<std::uint16_t>(Op::kScreenStatic));
  frame.u16(0);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.bytes(payload);

  ASSERT_TRUE(a.send_raw(frame.data()));  // admitted: queue is now full
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(b.send_raw(frame.data()));  // queue full -> immediate kBusy
  Reply breply;
  ASSERT_TRUE(b.read_reply(&breply));
  EXPECT_EQ(breply.op, Op::kBusy);

  ls.server.pause_dispatch(false);  // admitted request still completes
  Reply areply;
  ASSERT_TRUE(a.read_reply(&areply));
  EXPECT_EQ(areply.op, Op::kOk);
}

TEST(Server, StopDrainsAdmittedRequests) {
  ServerOptions opt;
  opt.unix_path = test_socket_path("drain");
  LiveServer ls(std::move(opt));
  ls.server.pause_dispatch(true);

  Client c = ls.connect();
  const std::vector<std::uint8_t> payload =
      encode_request(make_request(Op::kScapProfile));
  WireWriter frame;
  frame.u32(kMagic);
  frame.u16(static_cast<std::uint16_t>(Op::kScapProfile));
  frame.u16(0);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.bytes(payload);
  ASSERT_TRUE(c.send_raw(frame.data()));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // stop() must override the pause, answer the admitted request, then close.
  ls.server.stop();
  Reply reply;
  ASSERT_TRUE(c.read_reply(&reply));
  EXPECT_EQ(reply.op, Op::kOk);
  EXPECT_FALSE(c.read_reply(&reply));  // then EOF
}

TEST(Server, JournalCapturesServedRequestsAndReplays) {
  const std::string journal_path =
      "/tmp/scap_serve_test_" + std::to_string(::getpid()) + ".journal";
  {
    ServerOptions opt;
    opt.unix_path = test_socket_path("journal");
    opt.journal_path = journal_path;
    LiveServer ls(std::move(opt));
    Client c = ls.connect();
    Reply reply;
    std::string err;
    for (Op op : {Op::kScapProfile, Op::kScreenExact, Op::kFaultGrade}) {
      ASSERT_TRUE(c.call(make_request(op), &reply, &err)) << err;
      ASSERT_EQ(reply.op, Op::kOk);
    }
  }  // stop() flushes and closes the journal

  std::string err;
  const std::vector<JournalRecord> records =
      read_journal_file(journal_path, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(records.size(), 3u);
  ServeCore fresh;
  const ReplayResult res = replay_journal(records, fresh);
  EXPECT_EQ(res.mismatches, 0u) << res.detail;
  ::unlink(journal_path.c_str());
}

}  // namespace
}  // namespace scap::serve
