// Launch-off-shift (LOS) support: wiring, fault simulation, PODEM, engine,
// and the classic LOS-vs-LOC power comparison the SCAP model quantifies.
#include <gtest/gtest.h>

#include "atpg/engine.h"
#include "atpg/fault_sim.h"
#include "atpg/podem.h"
#include "core/pattern_sim.h"
#include "core/validation.h"
#include "sim/logic_sim.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace scap {
namespace {

struct LosRig {
  const SocDesign& soc = test::tiny_soc();
  const Netlist& nl = soc.netlist;
  TestContext loc = TestContext::for_domain(nl, 0);
  TestContext los = TestContext::for_domain_los(nl, 0, soc.scan.chains);
  std::vector<TdfFault> faults = collapse_faults(nl, enumerate_faults(nl));

  std::vector<Pattern> random_patterns(std::size_t n, std::uint64_t seed,
                                       const TestContext& ctx) {
    Rng rng(seed);
    std::vector<Pattern> pats(n);
    for (auto& p : pats) {
      p.s1.resize(ctx.num_vars());
      for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
    }
    return pats;
  }
};

TEST(LosContext, WiringFollowsChains) {
  LosRig rig;
  EXPECT_EQ(rig.los.num_scan_in, rig.soc.scan.chains.size());
  EXPECT_EQ(rig.los.num_vars(),
            rig.nl.num_flops() + rig.soc.scan.chains.size());
  for (std::size_t c = 0; c < rig.soc.scan.chains.size(); ++c) {
    const auto& chain = rig.soc.scan.chains[c];
    if (chain.empty()) continue;
    // First cell is fed by the chain's scan-in variable...
    EXPECT_EQ(rig.los.los_pred[chain[0]], rig.nl.num_flops() + c);
    // ...and every later cell by its shift predecessor.
    for (std::size_t i = 1; i < chain.size(); ++i) {
      EXPECT_EQ(rig.los.los_pred[chain[i]], chain[i - 1]);
    }
  }
}

/// Scalar reference for LOS detection.
bool los_reference_detects(const Netlist& nl, const TestContext& ctx,
                           const Pattern& p, const TdfFault& fault) {
  LogicSim sim(nl);
  std::vector<std::uint8_t> f1;
  std::span<const std::uint8_t> flop_bits(p.s1.data(), nl.num_flops());
  sim.eval_frame(flop_bits, ctx.pi_values, f1);
  std::vector<std::uint8_t> s2(nl.num_flops());
  for (FlopId f = 0; f < nl.num_flops(); ++f) s2[f] = p.s1[ctx.los_pred[f]];
  std::vector<std::uint8_t> g2;
  sim.eval_frame(s2, ctx.pi_values, g2);
  if (f1[fault.net] != fault.v1() || g2[fault.net] != fault.v2()) return false;
  if (fault.site == FaultSite::kFlopBranch) return ctx.active[fault.load];

  std::vector<std::uint8_t> x2(nl.num_nets());
  for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
    x2[nl.primary_inputs()[i]] = ctx.pi_values[i];
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) x2[nl.flop(f).q] = s2[f];
  if (fault.site == FaultSite::kStem) {
    x2[fault.net] = static_cast<std::uint8_t>(fault.v1());
  }
  std::array<std::uint8_t, 4> ins{};
  for (GateId g : nl.topo_order()) {
    const auto in_nets = nl.gate_inputs(g);
    for (std::size_t i = 0; i < in_nets.size(); ++i) {
      ins[i] = x2[in_nets[i]];
      if (fault.site == FaultSite::kGateBranch && fault.load == g &&
          fault.pin == i) {
        ins[i] = static_cast<std::uint8_t>(fault.v1());
      }
    }
    std::uint8_t out = eval_scalar(
        nl.gate(g).type,
        std::span<const std::uint8_t>(ins.data(), in_nets.size()));
    if (fault.site == FaultSite::kStem && nl.gate(g).out == fault.net) {
      out = static_cast<std::uint8_t>(fault.v1());
    }
    x2[nl.gate(g).out] = out;
  }
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    if (ctx.active[f] && x2[nl.flop(f).d] != g2[nl.flop(f).d]) return true;
  }
  return false;
}

TEST(LosFaultSim, MatchesScalarReference) {
  LosRig rig;
  const auto pats = rig.random_patterns(64, 3, rig.los);
  FaultSimulator fsim(rig.nl, rig.los);
  fsim.load_batch(pats);
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto& fault = rig.faults[rng.below(rig.faults.size())];
    const std::uint64_t mask = fsim.detect_mask(fault);
    for (int lane : {0, 17, 63}) {
      ASSERT_EQ((mask >> lane) & 1,
                los_reference_detects(rig.nl, rig.los, pats[lane], fault) ? 1u
                                                                          : 0u)
          << describe_fault(rig.nl, fault) << " lane " << lane;
    }
  }
}

TEST(LosPodem, ProbeAgreesWithFaultSim) {
  LosRig rig;
  Podem podem(rig.nl, rig.los);
  FaultSimulator fsim(rig.nl, rig.los);
  const auto pats = rig.random_patterns(8, 5, rig.los);
  fsim.load_batch(pats);
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const auto& fault = rig.faults[rng.below(rig.faults.size())];
    const std::uint64_t mask = fsim.detect_mask(fault);
    for (std::size_t lane = 0; lane < pats.size(); ++lane) {
      ASSERT_EQ(podem.probe(fault, pats[lane].s1), ((mask >> lane) & 1) != 0)
          << describe_fault(rig.nl, fault) << " lane " << lane;
    }
  }
}

TEST(LosPodem, CubesDetectTheirTargets) {
  LosRig rig;
  Podem podem(rig.nl, rig.los, PodemOptions{48});
  FaultSimulator fsim(rig.nl, rig.los);
  Rng rng(7);
  int detected = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const auto& fault = rig.faults[rng.below(rig.faults.size())];
    TestCube cube;
    if (podem.generate(fault, cube) != PodemStatus::kDetected) continue;
    ++detected;
    Pattern p;
    p.s1 = cube.s1;
    for (auto& b : p.s1) {
      if (b == kBitX) b = 0;
    }
    fsim.load_batch(std::span<const Pattern>(&p, 1));
    ASSERT_NE(fsim.detect_mask(fault) & 1, 0u)
        << describe_fault(rig.nl, fault);
  }
  EXPECT_GT(detected, 50);
}

TEST(LosEngine, EndToEndRun) {
  LosRig rig;
  AtpgEngine engine(rig.nl, rig.los);
  AtpgOptions opt;
  const AtpgResult res = engine.run(rig.faults, opt);
  EXPECT_GT(res.patterns.size(), 0u);
  EXPECT_GT(res.stats.fault_coverage(), 0.40);
  for (const Pattern& p : res.patterns.patterns) {
    EXPECT_EQ(p.s1.size(), rig.los.num_vars());
  }
}

TEST(LosVsLoc, LosCoversAtLeastComparably) {
  // With a fully controllable S2, LOS usually detects more TDFs than LOC
  // (some LOC-testable faults need functional states LOS can't shift in, so
  // allow a small deficit).
  LosRig rig;
  AtpgEngine engine(rig.nl, rig.los);
  AtpgEngine engine_loc(rig.nl, rig.loc);
  AtpgOptions opt;
  const AtpgResult los = engine.run(rig.faults, opt);
  const AtpgResult loc = engine_loc.run(rig.faults, opt);
  EXPECT_GT(los.stats.fault_coverage(), loc.stats.fault_coverage() - 0.03);
}

TEST(LosVsLoc, LosLaunchesMoreAndBurnsMore) {
  // The well-known LOS cost: the launch shift toggles every chain, so launch
  // switching (and SCAP) exceeds broadside's on average.
  LosRig rig;
  PatternAnalyzer analyzer(rig.soc, TechLibrary::generic180());
  Rng rng(8);
  double los_launches = 0.0, loc_launches = 0.0;
  double los_scap = 0.0, loc_scap = 0.0;
  const int kTrials = 6;
  for (int t = 0; t < kTrials; ++t) {
    Pattern p_los;
    p_los.s1.resize(rig.los.num_vars());
    for (auto& b : p_los.s1) b = static_cast<std::uint8_t>(rng.below(2));
    Pattern p_loc;
    p_loc.s1.assign(p_los.s1.begin(),
                    p_los.s1.begin() + static_cast<std::ptrdiff_t>(
                                           rig.nl.num_flops()));
    const auto a_los = analyzer.analyze(rig.los, p_los);
    const auto a_loc = analyzer.analyze(rig.loc, p_loc);
    los_launches += static_cast<double>(a_los.launched_flops);
    loc_launches += static_cast<double>(a_loc.launched_flops);
    los_scap += a_los.scap.scap_mw(Rail::kVdd) + a_los.scap.scap_mw(Rail::kVss);
    loc_scap += a_loc.scap.scap_mw(Rail::kVdd) + a_loc.scap.scap_mw(Rail::kVss);
  }
  EXPECT_GT(los_launches, loc_launches);
  EXPECT_GT(los_scap, loc_scap);
}

TEST(LosPattern, HeldDomainsStillShift) {
  // Unlike LOC (held flops keep S1), the launch shift moves *every* scan
  // flop, including other domains' -- one reason LOS burns more power.
  LosRig rig;
  PatternAnalyzer analyzer(rig.soc, TechLibrary::generic180());
  Rng rng(9);
  Pattern p;
  p.s1.resize(rig.los.num_vars());
  for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  const auto pa = analyzer.analyze(rig.los, p);
  bool inactive_launched = false;
  // Verify via toggles on an inactive flop's Q net.
  for (const ToggleEvent& t : pa.trace.toggles) {
    const Net& nr = rig.nl.net(t.net);
    if (nr.driver_kind == DriverKind::kFlop && !rig.los.active[nr.driver]) {
      inactive_launched = true;
      break;
    }
  }
  EXPECT_TRUE(inactive_launched);
}

TEST(EnhancedScan, FullControlBeatsOrMatchesBothSchemes) {
  LosRig rig;
  const TestContext enh =
      TestContext::for_domain_enhanced(rig.nl, 0);
  EXPECT_EQ(enh.num_vars(), 2 * rig.nl.num_flops());
  AtpgOptions opt;
  AtpgEngine e_enh(rig.nl, enh);
  AtpgEngine e_los(rig.nl, rig.los);
  AtpgEngine e_loc(rig.nl, rig.loc);
  const AtpgResult r_enh = e_enh.run(rig.faults, opt);
  const AtpgResult r_los = e_los.run(rig.faults, opt);
  const AtpgResult r_loc = e_loc.run(rig.faults, opt);
  // Enhanced scan subsumes both launch mechanisms (V1, V2 arbitrary).
  EXPECT_GE(r_enh.stats.fault_coverage() + 1e-9,
            r_los.stats.fault_coverage());
  EXPECT_GE(r_enh.stats.fault_coverage() + 1e-9,
            r_loc.stats.fault_coverage());
}

TEST(EnhancedScan, ProbeAgreesWithFaultSim) {
  LosRig rig;
  const TestContext enh = TestContext::for_domain_enhanced(rig.nl, 0);
  Podem podem(rig.nl, enh);
  FaultSimulator fsim(rig.nl, enh);
  Rng rng(12);
  std::vector<Pattern> pats(8);
  for (auto& p : pats) {
    p.s1.resize(enh.num_vars());
    for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  }
  fsim.load_batch(pats);
  for (int trial = 0; trial < 40; ++trial) {
    const auto& fault = rig.faults[rng.below(rig.faults.size())];
    const std::uint64_t mask = fsim.detect_mask(fault);
    for (std::size_t lane = 0; lane < pats.size(); ++lane) {
      ASSERT_EQ(podem.probe(fault, pats[lane].s1), ((mask >> lane) & 1) != 0)
          << describe_fault(rig.nl, fault) << " lane " << lane;
    }
  }
}

TEST(EnhancedScan, EveryLaunchValueIndependent) {
  // Setting only the V2 tail leaves S1 free and vice versa: a launch
  // transition can be forced on any single flop.
  LosRig rig;
  const TestContext enh = TestContext::for_domain_enhanced(rig.nl, 0);
  PatternAnalyzer analyzer(rig.soc, TechLibrary::generic180());
  Pattern p;
  p.s1.assign(enh.num_vars(), 0);
  const FlopId target = 3;
  p.s1[rig.nl.num_flops() + target] = 1;  // V2 of one flop differs
  const auto pa = analyzer.analyze(enh, p);
  EXPECT_GE(pa.launched_flops, 1u);
  bool target_toggled = false;
  for (const ToggleEvent& t : pa.trace.toggles) {
    const Net& nr = rig.nl.net(t.net);
    if (nr.driver_kind == DriverKind::kFlop && nr.driver == target) {
      target_toggled = true;
    }
  }
  EXPECT_TRUE(target_toggled);
}

}  // namespace
}  // namespace scap
