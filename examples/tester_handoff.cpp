// Tester hand-off: everything a downstream flow needs, written to disk.
//
//   design.v       structural Verilog netlist
//   design.sdf     back-annotated gate delays (nominal corner)
//   design.spef    extracted net parasitics
//   patterns.txt   the signed-off launch-off-capture pattern set
//
// The pattern set is screened against the B5 SCAP threshold first and
// repaired if anything violates, so what lands on the tester is the
// supply-noise-safe set.
#include <cstdio>
#include <fstream>

#include "atpg/pattern_io.h"
#include "core/experiment.h"
#include "core/power_aware.h"
#include "core/validation.h"
#include "layout/spef.h"
#include "netlist/verilog.h"
#include "sim/sdf.h"

int main() {
  using namespace scap;

  Experiment exp = Experiment::standard(/*scale=*/0.02, /*seed=*/2007);
  const Netlist& nl = exp.soc.netlist;

  // Power-aware pattern generation, then a repair pass as the safety net.
  AtpgOptions opt;
  opt.fill = FillMode::kQuiet;
  opt.seed = 2007;
  opt.chains = &exp.soc.scan.chains;
  FlowResult flow = run_power_aware_atpg(
      nl, exp.ctx, exp.faults, StepPlan::paper_default(nl.block_count()), opt);
  const RepairResult repaired = repair_scap_violations(
      exp.soc, *exp.lib, exp.ctx, exp.faults, flow.patterns, exp.thresholds,
      Experiment::kHotBlock, opt);
  std::printf("patterns: %zu generated, %zu violations repaired away, %zu "
              "shipped\n",
              repaired.patterns_before, repaired.violations_before,
              repaired.patterns_after);

  auto dump = [](const char* path, const std::string& text) {
    std::ofstream os(path);
    os << text;
    std::printf("wrote %-13s (%zu bytes)\n", path, text.size());
  };
  dump("design.v", to_verilog(nl));
  DelayModel dm(nl, *exp.lib, exp.soc.parasitics);
  dump("design.sdf", to_sdf(nl, dm));
  dump("design.spef", to_spef(nl, exp.soc.parasitics));
  dump("patterns.txt", to_pattern_text(repaired.patterns, exp.ctx));

  // Prove the hand-off is lossless: re-read both the netlist and the
  // patterns and regrade.
  const Netlist back = parse_verilog(to_verilog(nl));
  const PatternSet reloaded =
      parse_patterns(to_pattern_text(repaired.patterns, exp.ctx), exp.ctx);
  FaultSimulator fsim(back, exp.ctx);
  const auto first = fsim.grade(reloaded.patterns, exp.faults, nullptr);
  std::size_t detected = 0;
  for (auto idx : first) detected += (idx != FaultSimulator::kUndetected);
  std::printf("round-trip regrade: %zu / %zu faults detected (%.2f%% fault "
              "coverage)\n",
              detected, exp.faults.size(),
              100.0 * static_cast<double>(detected) /
                  static_cast<double>(exp.faults.size()));
  return 0;
}
