// The paper's full methodology, end to end:
//
//   1. statistical (vector-less) IR-drop analysis per block, Case1 vs Case2,
//      yielding per-block SCAP thresholds;
//   2. conventional random-fill transition-fault ATPG on the dominant clock
//      domain, SCAP-screened against the thresholds (the problem);
//   3. the stepwise power-aware flow -- fault lists handed to the ATPG one
//      block subset at a time with quiet fill (the solution);
//   4. comparison: violations, pattern count, coverage.
#include <cstdio>

#include "core/experiment.h"
#include "core/power_aware.h"
#include "core/validation.h"
#include "util/table.h"

int main() {
  using namespace scap;

  Experiment exp = Experiment::standard(/*scale=*/0.04, /*seed=*/2007);
  const Netlist& nl = exp.soc.netlist;
  const std::size_t hot = Experiment::kHotBlock;

  // --- 1. statistical analysis and thresholds -----------------------------
  std::printf("Step 1: statistical IR-drop analysis (toggle prob 0.30)\n");
  TextTable t3({"block", "P case2 [mW]", "worst VDD drop [V]"});
  for (std::size_t b = 0; b < nl.block_count(); ++b) {
    t3.add_row({"B" + std::to_string(b + 1),
                TextTable::num(exp.stat_case2.block_power_mw[b], 1),
                TextTable::num(exp.stat_case2.block_worst_vdd_v[b], 3)});
  }
  std::printf("%s", t3.render().c_str());
  std::printf("-> B5 is the hot block; its SCAP threshold is %.1f mW\n\n",
              exp.thresholds.block_mw[hot]);

  // --- 2. conventional ATPG ------------------------------------------------
  std::printf("Step 2: conventional random-fill ATPG on clka\n");
  AtpgOptions conv_opt;
  conv_opt.fill = FillMode::kRandom;
  conv_opt.seed = 2007;
  conv_opt.chains = &exp.soc.scan.chains;
  FlowResult conv = run_conventional_atpg(nl, exp.ctx, exp.faults, conv_opt);
  auto conv_scap = scap_profile(exp.soc, *exp.lib, exp.ctx, conv.patterns);
  const std::size_t conv_viol = exp.thresholds.count_violations(conv_scap, hot);
  std::printf("-> %zu patterns, %.2f%% fault coverage, %zu over the B5 "
              "threshold (%.1f%%)\n\n",
              conv.patterns.size(), 100.0 * conv.stats.fault_coverage(),
              conv_viol,
              100.0 * static_cast<double>(conv_viol) /
                  static_cast<double>(conv.patterns.size()));

  // --- 3. power-aware stepwise flow ----------------------------------------
  std::printf("Step 3: stepwise power-aware ATPG (B1-B4, then B6, then B5; "
              "quiet fill)\n");
  AtpgOptions pa_opt = conv_opt;
  pa_opt.fill = FillMode::kQuiet;
  FlowResult pa = run_power_aware_atpg(nl, exp.ctx, exp.faults,
                                       StepPlan::paper_default(nl.block_count()),
                                       pa_opt);
  auto pa_scap = scap_profile(exp.soc, *exp.lib, exp.ctx, pa.patterns);
  const std::size_t pa_viol = exp.thresholds.count_violations(pa_scap, hot);
  std::printf("-> %zu patterns, %.2f%% fault coverage, %zu over the B5 "
              "threshold (%.1f%%)\n\n",
              pa.patterns.size(), 100.0 * pa.stats.fault_coverage(), pa_viol,
              100.0 * static_cast<double>(pa_viol) /
                  static_cast<double>(pa.patterns.size()));

  // --- 4. summary -----------------------------------------------------------
  TextTable cmp({"flow", "patterns", "coverage", "B5 SCAP violations"});
  cmp.add_row({"conventional", std::to_string(conv.patterns.size()),
               TextTable::num(100.0 * conv.stats.fault_coverage(), 2) + "%",
               std::to_string(conv_viol)});
  cmp.add_row({"power-aware", std::to_string(pa.patterns.size()),
               TextTable::num(100.0 * pa.stats.fault_coverage(), 2) + "%",
               std::to_string(pa_viol)});
  std::printf("%s", cmp.render("Summary (paper: 2253 -> 57 violations at +8% "
                               "patterns, same coverage):")
                        .c_str());
  return 0;
}
