// Using the library on your own design instead of the synthetic SOC:
//   - build a small scan design through the netlist API (or parse structural
//     Verilog),
//   - run the physical-design helpers (floorplan, placement, extraction,
//     CTS, scan stitching),
//   - generate transition-fault patterns and screen them with SCAP.
//
// The design here is a 4-bit Johnson counter with an enable, plus a parity
// cone -- tiny, but it exercises every stage of the flow.
#include <cstdio>

#include "atpg/engine.h"
#include "core/pattern_sim.h"
#include "netlist/verilog.h"
#include "power/statistical.h"
#include "soc/scan_chains.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace scap;

  // --- build the netlist through the API -----------------------------------
  Netlist nl;
  nl.set_block_count(1);
  nl.set_domain_count(1);
  const NetId enable = nl.add_input("enable");

  constexpr int kBits = 4;
  NetId q[kBits], d[kBits];
  for (int i = 0; i < kBits; ++i) {
    q[i] = nl.add_net("q" + std::to_string(i));
    d[i] = nl.add_net("d" + std::to_string(i));
  }
  // Johnson rotation: d0 = ~q3, di = q(i-1); all gated by enable.
  const NetId nq3 = nl.add_net("nq3");
  {
    const NetId ins[] = {q[kBits - 1]};
    nl.add_gate(CellType::kInv, ins, nq3);
  }
  for (int i = 0; i < kBits; ++i) {
    const NetId next = i == 0 ? nq3 : q[i - 1];
    const NetId ins[] = {enable, q[i], next};  // S, A (hold), B (advance)
    nl.add_gate(CellType::kMux2, ins, d[i]);
  }
  // Parity observer: p = q0 ^ q1 ^ q2 ^ q3 into its own flop.
  const NetId p01 = nl.add_net("p01");
  const NetId p23 = nl.add_net("p23");
  const NetId par = nl.add_net("par");
  const NetId qp = nl.add_net("qp");
  {
    const NetId a[] = {q[0], q[1]};
    nl.add_gate(CellType::kXor2, a, p01);
    const NetId b[] = {q[2], q[3]};
    nl.add_gate(CellType::kXor2, b, p23);
    const NetId cc[] = {p01, p23};
    nl.add_gate(CellType::kXor2, cc, par);
  }
  for (int i = 0; i < kBits; ++i) nl.add_flop(d[i], q[i], 0, 0);
  nl.add_flop(par, qp, 0, 0);
  nl.finalize();

  // Round-trip through structural Verilog, as an interchange sanity check.
  const std::string verilog = to_verilog(nl, "johnson");
  std::printf("=== structural Verilog ===\n%s\n", verilog.c_str());
  Netlist reparsed = parse_verilog(verilog);
  std::printf("round-trip: %zu gates, %zu flops (original %zu / %zu)\n\n",
              reparsed.num_gates(), reparsed.num_flops(), nl.num_gates(),
              nl.num_flops());

  // --- physical design ------------------------------------------------------
  const TechLibrary& lib = TechLibrary::generic180();
  Floorplan fp = Floorplan::turbo_eagle_like(200.0, 8);
  Rng rng(7);
  Placement pl = Placement::place(nl, fp, rng);
  Parasitics par_x = Parasitics::extract(nl, pl, lib);
  ClockTree ct = ClockTree::synthesize(nl, pl, lib);
  ScanChains sc = ScanChains::build(nl, pl, 1);
  std::printf("physical design: %.0f um wire, %zu clock buffers, chain of "
              "%zu cells\n\n",
              par_x.total_wirelength_um(), ct.buffer_count(),
              sc.max_chain_length());

  // --- ATPG + SCAP ----------------------------------------------------------
  const TestContext ctx = TestContext::for_domain(nl, 0, /*pi_value=*/1);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  AtpgEngine engine(nl, ctx);
  AtpgOptions opt;
  opt.chains = &sc.chains;
  const AtpgResult res = engine.run(faults, opt);
  std::printf("ATPG: %zu faults, %zu patterns, %.1f%% fault coverage "
              "(%zu untestable)\n",
              faults.size(), res.patterns.size(),
              100.0 * res.stats.fault_coverage(), res.stats.untestable);

  SocConfig cfg;  // defaults good enough for a period and tester cycle
  SocDesign design{cfg,           std::move(nl), std::move(fp), std::move(pl),
                   std::move(par_x), std::move(ct), std::move(sc)};
  PatternAnalyzer analyzer(design, lib);
  TextTable t({"pattern", "launches", "toggles", "STW [ns]", "SCAP [mW]"});
  for (std::size_t i = 0; i < res.patterns.size() && i < 6; ++i) {
    const PatternAnalysis pa =
        analyzer.analyze(ctx, res.patterns.patterns[i]);
    t.add_row({std::to_string(i), std::to_string(pa.launched_flops),
               std::to_string(pa.scap.num_toggles),
               TextTable::num(pa.scap.stw_ns, 2),
               TextTable::num(pa.scap.scap_mw(Rail::kVdd) +
                                  pa.scap.scap_mw(Rail::kVss),
                              3)});
  }
  std::printf("\n%s", t.render("Per-pattern SCAP:").c_str());
  return 0;
}
