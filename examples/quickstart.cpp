// Quickstart: build a small synthetic SOC, run conventional transition-fault
// ATPG on its dominant clock domain, and screen the resulting patterns with
// the SCAP power model.
//
// This walks the whole public API surface in ~60 lines; the other examples
// dig into the power-aware flow and IR-drop debugging.
#include <cstdio>

#include "atpg/engine.h"
#include "core/experiment.h"
#include "core/validation.h"
#include "util/table.h"

int main() {
  using namespace scap;

  // A scaled-down Turbo-Eagle-like SOC: 6 blocks, 6 clock domains, 16 scan
  // chains, placed and routed onto a 3x3 mm die with a 74-pad power ring.
  Experiment exp = Experiment::standard(/*scale=*/0.04, /*seed=*/2007);
  const Netlist& nl = exp.soc.netlist;
  std::printf("SOC: %zu gates, %zu flops, %zu nets, %u clock domains\n",
              nl.num_gates(), nl.num_flops(), nl.num_nets(),
              nl.domain_count());
  std::printf("faults: %zu total, %zu after collapsing\n",
              exp.all_faults.size(), exp.faults.size());

  // Conventional ATPG: random-fill launch-off-capture patterns for clka.
  AtpgOptions opt;
  opt.fill = FillMode::kRandom;
  opt.chains = &exp.soc.scan.chains;
  AtpgEngine engine(nl, exp.ctx);
  AtpgResult res = engine.run(exp.faults, opt);
  std::printf("ATPG: %zu patterns, coverage %.2f%% (test coverage %.2f%%), "
              "%zu untestable, %zu aborted\n",
              res.patterns.size(), 100.0 * res.stats.fault_coverage(),
              100.0 * res.stats.test_coverage(), res.stats.untestable,
              res.stats.aborted);

  // SCAP screening: how many patterns exceed the block-B5 threshold derived
  // from the half-cycle statistical IR-drop analysis?
  std::vector<ScapReport> profile =
      scap_profile(exp.soc, *exp.lib, exp.ctx, res.patterns);
  const std::size_t hot = Experiment::kHotBlock;
  const std::size_t violations = exp.thresholds.count_violations(profile, hot);
  std::printf("B5 SCAP threshold: %.1f mW; %zu / %zu patterns above it\n",
              exp.thresholds.block_mw[hot], violations, profile.size());

  TextTable t({"pattern", "STW [ns]", "CAP [mW]", "SCAP [mW]", "toggles"});
  for (std::size_t i = 0; i < profile.size() && i < 5; ++i) {
    const ScapReport& r = profile[i];
    t.add_row({std::to_string(i), TextTable::num(r.stw_ns, 2),
               TextTable::num(r.cap_mw(Rail::kVdd) + r.cap_mw(Rail::kVss), 2),
               TextTable::num(r.scap_mw(Rail::kVdd) + r.scap_mw(Rail::kVss), 2),
               std::to_string(r.num_toggles)});
  }
  std::printf("\n%s", t.render("First patterns, chip-level power:").c_str());
  return 0;
}
