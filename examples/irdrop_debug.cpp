// IR-drop debug session for a single suspect pattern (paper Section 3.2):
//   - simulate the launch-to-capture window at nominal timing,
//   - feed the toggle trace to the dynamic rail analysis,
//   - re-simulate with ScaledCellDelay = Delay * (1 + k_volt * dV) and
//     droop-scaled clock arrivals,
//   - report the endpoint delay shifts (Figure 7's Regions 1 and 2) and the
//     rail map, and dump a VCD for waveform viewing.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/experiment.h"
#include "core/validation.h"
#include "sim/vcd.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace scap;

  Experiment exp = Experiment::standard(/*scale=*/0.03, /*seed=*/2007);
  const Netlist& nl = exp.soc.netlist;

  // A random high-activity scan state stands in for the suspect pattern.
  Rng rng(42);
  Pattern pattern;
  pattern.s1.resize(nl.num_flops());
  for (auto& b : pattern.s1) b = static_cast<std::uint8_t>(rng.below(2));

  const IrValidationResult v =
      validate_pattern_ir(exp.soc, *exp.lib, exp.grid, exp.ctx, pattern);

  std::printf("pattern: %zu toggles, STW %.2f ns, worst VDD drop %.3f V, "
              "worst VSS rise %.3f V\n\n",
              v.nominal.trace.toggles.size(), v.nominal.trace.last_toggle_ns,
              v.ir.worst_vdd_v, v.ir.worst_vss_v);

  const double alarm = exp.lib->ir_alarm_fraction() * exp.lib->vdd();
  std::printf("VDD rail map ('#' marks drops above %.2f V = 10%% VDD):\n%s\n",
              alarm, PowerGrid::ascii_map(v.ir.vdd_solution, alarm, 48).c_str());

  // Endpoint comparison: worst slowdowns and measured speedups.
  struct Endpoint {
    FlopId flop;
    double nominal, scaled;
  };
  std::vector<Endpoint> slow, fast;
  for (FlopId f = 0; f < nl.num_flops(); ++f) {
    const double n = v.nominal_endpoint_ns[f], s = v.scaled_endpoint_ns[f];
    if (n <= 0.0) continue;
    if (s > n + 1e-9) slow.push_back({f, n, s});
    if (s < n - 1e-9) fast.push_back({f, n, s});
  }
  auto by_shift = [](const Endpoint& a, const Endpoint& b) {
    return std::abs(a.scaled - a.nominal) > std::abs(b.scaled - b.nominal);
  };
  std::sort(slow.begin(), slow.end(), by_shift);
  std::sort(fast.begin(), fast.end(), by_shift);

  TextTable t({"endpoint flop", "block", "nominal [ns]", "IR-scaled [ns]",
               "shift"});
  for (std::size_t i = 0; i < slow.size() && i < 5; ++i) {
    const Endpoint& e = slow[i];
    t.add_row({"f" + std::to_string(e.flop),
               "B" + std::to_string(nl.flop(e.flop).block + 1),
               TextTable::num(e.nominal, 3), TextTable::num(e.scaled, 3),
               TextTable::num(100.0 * (e.scaled - e.nominal) / e.nominal, 1) +
                   "%"});
  }
  for (std::size_t i = 0; i < fast.size() && i < 3; ++i) {
    const Endpoint& e = fast[i];
    t.add_row({"f" + std::to_string(e.flop),
               "B" + std::to_string(nl.flop(e.flop).block + 1),
               TextTable::num(e.nominal, 3), TextTable::num(e.scaled, 3),
               TextTable::num(100.0 * (e.scaled - e.nominal) / e.nominal, 1) +
                   "%"});
  }
  std::printf("%s", t.render("Worst Region-1 (slower) and Region-2 (measured "
                             "faster) endpoints:")
                        .c_str());
  std::printf("\nRegion 1: %zu endpoints slower; Region 2: %zu endpoints "
              "measured faster (capture clock slowed)\n",
              slow.size(), fast.size());

  // VCD dump of the nominal window for a waveform viewer. Default next to
  // the executable (the build tree), never the source checkout; argv[1]
  // overrides.
  const std::string vcd_path =
      argc > 1 ? std::string(argv[1])
               : (std::filesystem::path(argv[0]).parent_path() /
                  "irdrop_debug.vcd")
                     .string();
  std::ofstream os(vcd_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", vcd_path.c_str());
    return 1;
  }
  write_vcd(nl, v.nominal.frame1_nets, v.nominal.trace, os);
  std::printf("wrote %s (%zu value changes)\n", vcd_path.c_str(),
              v.nominal.trace.toggles.size());
  return 0;
}
