// Extension -- power-constrained SOC test scheduling (paper Section 1,
// refs [5][6]): per-clock-domain test sessions are packed in parallel under
// a chip power budget. The session powers come from the SCAP model (mean
// per-pattern switching power of each domain's pattern set), the times from
// pattern count x (shift cycles / shift clock + tester cycle).
#include "bench_common.h"

#include "core/test_schedule.h"
#include "util/stats.h"

namespace scap {
namespace {

std::vector<TestSession> build_sessions() {
  const Experiment& exp = bench::experiment();
  const Netlist& nl = exp.soc.netlist;
  std::vector<TestSession> sessions;

  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  for (DomainId d = 0; d < nl.domain_count(); ++d) {
    TestContext ctx = TestContext::for_domain(nl, d);
    if (ctx.active_count() == 0) continue;
    AtpgOptions opt = bench::bench_atpg_options();
    opt.fill = FillMode::kRandom;
    // Sample the fault list for speed; pattern counts scale accordingly.
    std::vector<TdfFault> sample;
    for (std::size_t i = 0; i < exp.faults.size(); i += 4) {
      sample.push_back(exp.faults[i]);
    }
    AtpgEngine engine(nl, ctx);
    const AtpgResult res = engine.run(sample, opt);
    if (res.patterns.patterns.empty()) continue;

    RunningStats scap;
    for (std::size_t i = 0; i < res.patterns.size() && i < 32; ++i) {
      const auto pa = analyzer.analyze(ctx, res.patterns.patterns[i]);
      scap.add(pa.scap.scap_mw(Rail::kVdd) + pa.scap.scap_mw(Rail::kVss));
    }
    const double shift_us = static_cast<double>(exp.soc.scan.max_chain_length()) /
                            exp.soc.config.shift_mhz;
    const double per_pattern_us =
        shift_us + exp.soc.config.tester_period_ns * 1e-3;
    sessions.push_back(TestSession{
        std::string("clk") + static_cast<char>('a' + d),
        static_cast<double>(res.patterns.size()) * per_pattern_us,
        scap.mean()});
  }
  return sessions;
}

void print_scheduling() {
  const std::vector<TestSession> sessions = build_sessions();

  TextTable st({"session", "time [us]", "power [mW]"});
  double max_power = 0.0, sum_power = 0.0;
  for (const TestSession& s : sessions) {
    st.add_row({s.name, TextTable::num(s.time_us, 1),
                TextTable::num(s.power_mw, 1)});
    max_power = std::max(max_power, s.power_mw);
    sum_power += s.power_mw;
  }
  std::printf("%s\n", st.render("Per-domain test sessions:").c_str());

  const double serial = serial_time_us(sessions);
  TextTable t({"power budget [mW]", "makespan [us]", "vs serial",
               "peak power [mW]", "note"});
  for (double frac : {1.05, 1.5, 2.0, 3.0}) {
    const double budget = frac * max_power;
    const TestSchedule sch = schedule_tests(sessions, budget);
    t.add_row({TextTable::num(budget, 1), TextTable::num(sch.makespan_us, 1),
               TextTable::num(100.0 * sch.makespan_us / serial, 0) + "%",
               TextTable::num(sch.peak_power_mw, 1),
               sch.budget_exceeded ? "session over budget" : ""});
  }
  const TestSchedule unlimited = schedule_tests(sessions, sum_power + 1.0);
  t.add_row({"unlimited", TextTable::num(unlimited.makespan_us, 1),
             TextTable::num(100.0 * unlimited.makespan_us / serial, 0) + "%",
             TextTable::num(unlimited.peak_power_mw, 1), "fully parallel"});
  std::printf("%s\n",
              t.render("Schedules (serial baseline " +
                       TextTable::num(serial, 1) + " us):")
                  .c_str());
  std::printf("Shape: raising the allowed test power buys test time, the "
              "paper's motivation for\nkeeping per-pattern SCAP under "
              "control when blocks are tested in parallel.\n\n");
}

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("test_scheduling", "Extension", "power-constrained SOC test scheduling");
  run.phase("table");
  scap::print_scheduling();
  (void)argc;
  (void)argv;
  return 0;
}
