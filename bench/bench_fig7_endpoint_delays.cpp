// Figure 7 -- Per-endpoint path delay with and without IR-drop effects.
//
// Paper: one below-threshold pattern that exercises mostly block B5 is
// re-simulated with every cell delay scaled by its local droop
// (ScaledCellDelay = Delay * (1 + 0.9 * dV)) and clock buffers scaled the
// same way. Observed: Region 1 endpoints slow down by up to ~30% (their
// input cones sit in the B5 droop), Region 2 endpoints *measure faster*
// because their own capture-clock path slowed; non-active endpoints stay 0.
#include "bench_common.h"

#include "util/stats.h"

namespace scap {
namespace {

std::size_t pick_pattern() {
  // Below the threshold, maximal B5 activity: the paper's circled pattern in
  // Figure 6.
  const Experiment& exp = bench::experiment();
  const auto& profile = bench::power_aware_scap();
  const std::size_t hot = Experiment::kHotBlock;
  const double threshold = exp.thresholds.block_mw[hot];
  std::size_t pick = 0;
  double best = -1e18;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double scap = ScapThresholds::block_scap_mw(profile[i], hot);
    if (scap <= threshold && scap > best) {
      best = scap;
      pick = i;
    }
  }
  return pick;
}

void print_fig7() {
  const Experiment& exp = bench::experiment();
  const std::size_t pick = pick_pattern();
  const IrValidationResult v = validate_pattern_ir(
      exp.soc, *exp.lib, exp.grid, exp.ctx,
      bench::power_aware_flow().patterns.patterns[pick]);

  const std::size_t n = exp.soc.netlist.num_flops();
  bench::print_series("endpoint delay, no IR [ns]", n, [&](std::size_t i) {
    return v.nominal_endpoint_ns[i];
  });
  bench::print_series("endpoint delay, IR-scaled [ns]", n, [&](std::size_t i) {
    return v.scaled_endpoint_ns[i];
  });

  std::size_t active = 0, region1 = 0, region2 = 0, became_inactive = 0;
  double max_increase_pct = 0.0, max_decrease_pct = 0.0;
  RunningStats deltas;
  for (FlopId f = 0; f < n; ++f) {
    const double nom = v.nominal_endpoint_ns[f];
    const double scl = v.scaled_endpoint_ns[f];
    if (nom <= 0.0) continue;
    ++active;
    if (scl <= 0.0) {
      // Hazard activity vanished under scaled delays; not a Region-2 case.
      ++became_inactive;
      continue;
    }
    const double pct = 100.0 * (scl - nom) / nom;
    deltas.add(pct);
    if (scl > nom + 1e-9) {
      ++region1;
      max_increase_pct = std::max(max_increase_pct, pct);
    } else if (scl < nom - 1e-9) {
      ++region2;
      max_decrease_pct = std::min(max_decrease_pct, pct);
    }
  }

  std::printf("\npattern %zu: worst VDD drop %.3f V, worst VSS rise %.3f V, "
              "STW %.2f ns\n",
              pick, v.ir.worst_vdd_v, v.ir.worst_vss_v,
              v.nominal.trace.last_toggle_ns);
  std::printf("active endpoints: %zu of %zu flops\n", active, n);
  std::printf("Region 1 (slower under IR): %zu endpoints, worst +%.1f%% "
              "(paper: up to +30%%)\n",
              region1, max_increase_pct);
  std::printf("Region 2 (measured faster -- capture clock slowed): %zu "
              "endpoints, %.1f%% at most (paper: present)\n",
              region2, max_decrease_pct);
  std::printf("endpoints whose activity vanished under scaling: %zu\n",
              became_inactive);
  std::printf("mean endpoint delay shift: %+.2f%%\n\n", deltas.mean());
}

void BM_IrValidationFlow(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  const Pattern& p = bench::power_aware_flow().patterns.patterns[0];
  for (auto _ : state) {
    auto v = validate_pattern_ir(exp.soc, *exp.lib, exp.grid, exp.ctx, p);
    benchmark::DoNotOptimize(v.ir.worst_vdd_v);
  }
}
BENCHMARK(BM_IrValidationFlow)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("fig7_endpoint_delays", "Figure 7", "endpoint path delays: nominal vs IR-drop-scaled delays");
  run.phase("table");
  scap::print_fig7();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
