// Figure 2 -- SCAP per pattern in block B5 for the conventional random-fill
// transition-fault pattern set (clka domain).
//
// Paper: 5846 patterns; a large share (~2253, 39%) exceed the 204 mW block-B5
// threshold derived from the Case2 statistical analysis. That is the
// motivation for the power-aware flow: random fill maximizes fortuitous
// detection and, with it, switching activity in the hot block.
#include "bench_common.h"

#include "util/stats.h"

namespace scap {
namespace {

void print_fig2() {
  const Experiment& exp = bench::experiment();
  const auto& profile = bench::conventional_scap();
  const std::size_t hot = Experiment::kHotBlock;
  const double threshold = exp.thresholds.block_mw[hot];

  bench::print_series("B5 SCAP per pattern [mW]", profile.size(),
                      [&](std::size_t i) {
                        return ScapThresholds::block_scap_mw(profile[i], hot);
                      });

  const std::size_t viol = exp.thresholds.count_violations(profile, hot);
  RunningStats stats;
  for (const auto& rep : profile) {
    stats.add(ScapThresholds::block_scap_mw(rep, hot));
  }
  std::printf("\npatterns: %zu   B5 threshold: %.1f mW\n", profile.size(),
              threshold);
  std::printf("B5 SCAP: mean %.1f mW, max %.1f mW\n", stats.mean(),
              stats.max());
  std::printf("patterns above threshold: %zu / %zu (%.1f%%)\n", viol,
              profile.size(),
              100.0 * static_cast<double>(viol) /
                  static_cast<double>(profile.size()));
  std::printf("paper: 2253 / 5846 (38.5%%) above the 204 mW threshold\n");
  std::printf("coverage of the set: %.2f%% fault coverage, %zu untestable, "
              "%zu aborted\n\n",
              100.0 * bench::conventional_flow().stats.fault_coverage(),
              bench::conventional_flow().stats.untestable,
              bench::conventional_flow().stats.aborted);
}

void BM_ScapProfileChunk(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  const auto& patterns = bench::conventional_flow().patterns;
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t i = 0; i < 8 && i < patterns.size(); ++i) {
      sum += analyzer.analyze(exp.ctx, patterns.patterns[i]).scap.stw_ns;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ScapProfileChunk)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("fig2_scap_randomfill", "Figure 2", "per-pattern SCAP in B5, conventional random-fill set");
  run.phase("table");
  scap::print_fig2();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
