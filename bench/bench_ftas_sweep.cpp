// Extension -- faster-than-at-speed (FTAS) capture sweep.
//
// The paper's STW observation ("the switching window is roughly half the
// cycle") comes from the authors' companion FTAS framework [20]: capturing
// earlier than the functional period catches small delay defects, but
// IR-drop-induced slowdown then causes good-chip endpoints to miss the
// capture edge -- overkill. This bench sweeps the capture period on one
// pattern and counts endpoints that would fail setup, with nominal timing
// vs IR-scaled timing; the gap between the two curves is the overkill band.
#include "bench_common.h"

namespace scap {
namespace {

void print_ftas() {
  const Experiment& exp = bench::experiment();
  const auto& profile = bench::conventional_scap();

  // Use the loudest pattern, as the IR stress case.
  std::size_t pick = 0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (profile[i].num_toggles > profile[pick].num_toggles) pick = i;
  }
  const IrValidationResult v = validate_pattern_ir(
      exp.soc, *exp.lib, exp.grid, exp.ctx,
      bench::conventional_flow().patterns.patterns[pick]);

  const double functional_period = exp.soc.period_ns(exp.ctx.domain);
  const double setup_ns = 0.10;

  auto failing = [&](std::span<const double> delays, double period) {
    std::size_t n = 0;
    for (double d : delays) {
      if (d > 0.0 && d + setup_ns > period) ++n;
    }
    return n;
  };

  TextTable t({"capture period [ns]", "vs functional", "failing (nominal)",
               "failing (IR-scaled)", "overkill endpoints"});
  double min_pass_nominal = 0.0, min_pass_scaled = 0.0;
  for (double period = functional_period; period >= 0.35 * functional_period;
       period -= 0.05 * functional_period) {
    const std::size_t fn = failing(v.nominal_endpoint_ns, period);
    const std::size_t fs = failing(v.scaled_endpoint_ns, period);
    t.add_row({TextTable::num(period, 2),
               TextTable::num(100.0 * period / functional_period, 0) + "%",
               std::to_string(fn), std::to_string(fs),
               std::to_string(fs > fn ? fs - fn : 0)});
    if (fn == 0) min_pass_nominal = period;
    if (fs == 0) min_pass_scaled = period;
  }
  std::printf("%s\n",
              t.render("FTAS sweep on pattern " + std::to_string(pick) +
                       " (setup " + TextTable::num(setup_ns, 2) + " ns)")
                  .c_str());
  std::printf("fastest clean capture: nominal %.2f ns, with IR-drop %.2f ns\n",
              min_pass_nominal, min_pass_scaled);
  std::printf("-> IR-drop costs %.0f%% of the FTAS margin; testing faster "
              "than %.2f ns would fail good chips.\n\n",
              min_pass_nominal > 0
                  ? 100.0 * (min_pass_scaled - min_pass_nominal) /
                        std::max(1e-9, functional_period - min_pass_nominal)
                  : 0.0,
              min_pass_scaled);
}

void BM_EndpointDelayExtraction(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  const auto pa = analyzer.analyze(
      exp.ctx, bench::conventional_flow().patterns.patterns[0]);
  std::vector<double> arrivals(exp.soc.netlist.num_flops());
  for (FlopId f = 0; f < exp.soc.netlist.num_flops(); ++f) {
    arrivals[f] = exp.soc.clock_tree.nominal_arrival_ns(f);
  }
  for (auto _ : state) {
    auto delays = analyzer.endpoint_delays(pa.trace, arrivals);
    benchmark::DoNotOptimize(delays.data());
  }
}
BENCHMARK(BM_EndpointDelayExtraction)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("ftas_sweep", "Extension", "faster-than-at-speed capture sweep under IR-drop");
  run.phase("table");
  scap::print_ftas();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
