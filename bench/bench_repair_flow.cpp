// Extension -- identify-and-replace repair of SCAP violations.
//
// Reference [18] of the paper statically verifies vectors for IR-drop risk
// and flags the failing ones; the paper's flow avoids generating them in the
// first place. This bench closes the remaining loop: take the conventional
// random-fill set, drop every pattern over the B5 threshold, and regenerate
// the lost coverage with throttled quiet-fill ATPG rounds -- a retrofit path
// for pattern sets that already exist.
#include "bench_common.h"

namespace scap {
namespace {

void print_repair() {
  const Experiment& exp = bench::experiment();
  AtpgOptions opt = bench::bench_atpg_options();
  const RepairResult rep = repair_scap_violations(
      exp.soc, *exp.lib, exp.ctx, exp.faults,
      bench::conventional_flow().patterns, exp.thresholds,
      Experiment::kHotBlock, opt);

  TextTable t({"metric", "before repair", "after repair"});
  t.add_row({"patterns", std::to_string(rep.patterns_before),
             std::to_string(rep.patterns_after)});
  t.add_row({"B5 SCAP violations", std::to_string(rep.violations_before),
             std::to_string(rep.violations_after)});
  t.add_row({"faults detected", std::to_string(rep.detected_before),
             std::to_string(rep.detected_after)});
  std::printf("%s\n", t.render("Repair of the conventional random-fill set (" +
                               std::to_string(rep.rounds) + " rounds)")
                          .c_str());
  std::printf("Coverage retained: %.2f%% of the original detections at %.0f%% "
              "of the original violation count.\n\n",
              100.0 * static_cast<double>(rep.detected_after) /
                  static_cast<double>(std::max<std::size_t>(1, rep.detected_before)),
              100.0 * static_cast<double>(rep.violations_after) /
                  static_cast<double>(std::max<std::size_t>(1, rep.violations_before)));
}

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("repair_flow", "Extension", "repairing an existing pattern set's SCAP violations");
  run.phase("table");
  scap::print_repair();
  (void)argc;
  (void)argv;
  return 0;
}
