// Table 3 -- Statistical (vector-less) functional IR-drop analysis per block.
//
// Paper: 30% net toggle probability; Case1 averages over the full cycle,
// Case2 concentrates the same switching into half the cycle (the average
// switching-time-frame observation). Published shape:
//   - average switching power doubles from Case1 to Case2 in every block,
//   - worst average IR-drop does NOT double for the small peripheral blocks
//     (B1..B4, B6 sit next to the pad ring),
//   - B5 consumes the most power and sees the highest IR-drop once the
//     window shrinks -> it needs special attention during ATPG.
// The Case2 block powers become the SCAP screening thresholds.
#include "bench_common.h"

namespace scap {
namespace {

void print_table3() {
  const Experiment& exp = bench::experiment();
  const StatisticalReport& c1 = exp.stat_case1;
  const StatisticalReport& c2 = exp.stat_case2;

  TextTable t({"block", "P case1 [mW]", "VDD drop c1 [V]", "VSS rise c1 [V]",
               "P case2 [mW]", "VDD drop c2 [V]", "VSS rise c2 [V]",
               "drop ratio c2/c1"});
  for (std::size_t b = 0; b < c1.block_power_mw.size(); ++b) {
    t.add_row({"B" + std::to_string(b + 1),
               TextTable::num(c1.block_power_mw[b], 1),
               TextTable::num(c1.block_worst_vdd_v[b], 3),
               TextTable::num(c1.block_worst_vss_v[b], 3),
               TextTable::num(c2.block_power_mw[b], 1),
               TextTable::num(c2.block_worst_vdd_v[b], 3),
               TextTable::num(c2.block_worst_vss_v[b], 3),
               TextTable::num(c2.block_worst_vdd_v[b] /
                                  std::max(1e-12, c1.block_worst_vdd_v[b]),
                              2)});
  }
  t.add_row({"Chip", TextTable::num(c1.chip_power_mw, 1),
             TextTable::num(c1.chip_worst_vdd_v, 3),
             TextTable::num(c1.chip_worst_vss_v, 3),
             TextTable::num(c2.chip_power_mw, 1),
             TextTable::num(c2.chip_worst_vdd_v, 3),
             TextTable::num(c2.chip_worst_vss_v, 3),
             TextTable::num(c2.chip_worst_vdd_v /
                                std::max(1e-12, c1.chip_worst_vdd_v),
                            2)});
  std::printf("%s\n",
              t.render("Table 3: statistical IR-drop, Case1 (full cycle) vs "
                       "Case2 (half-cycle STW), toggle prob 0.30")
                  .c_str());

  // Shape checks against the paper.
  std::size_t hottest_power = 0, hottest_drop = 0;
  for (std::size_t b = 1; b < c2.block_power_mw.size(); ++b) {
    if (c2.block_power_mw[b] > c2.block_power_mw[hottest_power]) {
      hottest_power = b;
    }
    if (c2.block_worst_vdd_v[b] > c2.block_worst_vdd_v[hottest_drop]) {
      hottest_drop = b;
    }
  }
  std::printf("Shape vs paper: power doubles in every block (exact, by "
              "construction of Case2);\n");
  std::printf("  hottest block by Case2 power:  B%zu (paper: B5)\n",
              hottest_power + 1);
  std::printf("  hottest block by Case2 IR-drop: B%zu (paper: B5)\n",
              hottest_drop + 1);
  std::printf("  B5 Case2 power (the paper's 204 mW-class SCAP threshold "
              "here): %.1f mW\n\n",
              exp.thresholds.block_mw[Experiment::kHotBlock]);
}

void BM_StatisticalAnalysis(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  StatisticalOptions opt;
  opt.window_fraction = 0.5;
  for (auto _ : state) {
    auto rep = analyze_statistical(exp.soc.netlist, exp.soc.placement,
                                   exp.soc.parasitics, *exp.lib,
                                   exp.soc.floorplan, exp.grid,
                                   exp.soc.config.domain_freq_mhz,
                                   &exp.soc.clock_tree, opt);
    benchmark::DoNotOptimize(rep.chip_worst_vdd_v);
  }
}
BENCHMARK(BM_StatisticalAnalysis)->Unit(benchmark::kMillisecond);

void BM_GridSolve(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  std::vector<Point> where{exp.soc.floorplan.block(4).rect.center()};
  std::vector<double> amps{0.1};
  for (auto _ : state) {
    auto sol = exp.grid.solve(where, amps, true);
    benchmark::DoNotOptimize(sol.worst());
  }
}
BENCHMARK(BM_GridSolve)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("table3_statistical_irdrop", "Table 3", "statistical functional IR-drop per block");
  run.phase("table");
  scap::print_table3();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
