// Figure 4 -- Test-coverage curves: conventional ATPG vs the new stepwise
// pattern-generation procedure.
//
// Paper: the stepwise flow converges more slowly (quiet fill forfeits some
// fortuitous detection, and blocks are targeted one subset at a time) and
// lands at the same final coverage with ~644 extra patterns (5846 -> 6490,
// about +11% on clka).
#include "bench_common.h"

namespace scap {
namespace {

void print_fig4() {
  const FlowResult& conv = bench::conventional_flow();
  const FlowResult& pa = bench::power_aware_flow();

  const auto conv_curve = conv.coverage_curve();
  const auto pa_curve = pa.coverage_curve();
  bench::print_series("conventional coverage [%]", conv_curve.size(),
                      [&](std::size_t i) { return 100.0 * conv_curve[i]; });
  bench::print_series("power-aware coverage [%]", pa_curve.size(),
                      [&](std::size_t i) { return 100.0 * pa_curve[i]; });

  TextTable t({"flow", "patterns", "fault coverage", "test coverage",
               "untestable", "aborted"});
  t.add_row({"conventional (random-fill)", std::to_string(conv.patterns.size()),
             TextTable::num(100.0 * conv.stats.fault_coverage(), 2) + "%",
             TextTable::num(100.0 * conv.stats.test_coverage(), 2) + "%",
             std::to_string(conv.stats.untestable),
             std::to_string(conv.stats.aborted)});
  t.add_row({"stepwise power-aware", std::to_string(pa.patterns.size()),
             TextTable::num(100.0 * pa.stats.fault_coverage(), 2) + "%",
             TextTable::num(100.0 * pa.stats.test_coverage(), 2) + "%",
             std::to_string(pa.stats.untestable),
             std::to_string(pa.stats.aborted)});
  std::printf("%s\n", t.render("Figure 4: final coverage comparison").c_str());

  const double extra =
      100.0 *
      (static_cast<double>(pa.patterns.size()) /
           static_cast<double>(conv.patterns.size()) -
       1.0);
  std::printf("pattern count increase: %+.1f%% (paper: +644 patterns = "
              "+11.0%% on clka)\n",
              extra);
  std::printf("coverage delta at end: %+.2f points (paper: matching final "
              "coverage)\n",
              100.0 * (pa.stats.fault_coverage() - conv.stats.fault_coverage()));
  std::printf("step starts (pattern index): ");
  for (std::size_t s : pa.step_start) std::printf("%zu ", s);
  std::printf(" (Step1: B1-B4, Step2: B6, Step3: B5)\n\n");
}

void BM_PodemOneFault(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  Podem podem(exp.soc.netlist, exp.ctx, PodemOptions{32});
  std::size_t i = 0;
  for (auto _ : state) {
    TestCube cube;
    auto st = podem.generate(exp.faults[i++ % exp.faults.size()], cube);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_PodemOneFault);

void BM_FaultSimBatch(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  FaultSimulator fsim(exp.soc.netlist, exp.ctx);
  const auto& patterns = bench::conventional_flow().patterns.patterns;
  fsim.load_batch(std::span<const Pattern>(patterns.data(),
                                           std::min<std::size_t>(64, patterns.size())));
  for (auto _ : state) {
    std::uint64_t any = 0;
    for (std::size_t i = 0; i < 256 && i < exp.faults.size(); ++i) {
      any |= fsim.detect_mask(exp.faults[i]);
    }
    benchmark::DoNotOptimize(any);
  }
}
BENCHMARK(BM_FaultSimBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("fig4_coverage_curves", "Figure 4", "coverage curves: conventional vs power-aware");
  run.phase("table");
  scap::print_fig4();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
