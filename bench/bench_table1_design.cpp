// Table 1 -- Design characteristics.
//
// Paper: 6 clock domains, 16 scan chains, ~23K scan flops, 22 negative-edge
// scan flops on a separate chain, and the transition-delay-fault universe.
// We report the same characteristics for the scaled synthetic SOC.
#include "bench_common.h"

#include "netlist/design_stats.h"
#include "sim/sta.h"

namespace scap {
namespace {

void print_table1() {
  const Experiment& exp = bench::experiment();
  const DesignStats s = compute_design_stats(exp.soc.netlist);

  TextTable t({"characteristic", "paper (Turbo-Eagle)", "this repro"});
  t.add_row({"Clock domains", "6", std::to_string(s.num_clock_domains)});
  t.add_row({"Scan chains", "16", std::to_string(exp.soc.scan.chains.size())});
  t.add_row({"Total scan flops", "~23000", std::to_string(s.num_flops)});
  t.add_row({"Negative-edge scan flops", "22",
             std::to_string(s.num_neg_edge_flops)});
  t.add_row({"Transition delay faults (all pins)", "n/a (not printed)",
             std::to_string(exp.all_faults.size())});
  t.add_row({"TDF after equivalence collapsing", "-",
             std::to_string(exp.faults.size())});
  t.add_row({"Combinational gates", "-", std::to_string(s.num_gates)});
  t.add_row({"Blocks (B1..B6)", "6", std::to_string(s.num_blocks)});
  t.add_row({"Max logic depth", "-", std::to_string(s.max_logic_level)});
  {
    DelayModel dm(exp.soc.netlist, *exp.lib, exp.soc.parasitics);
    std::vector<double> arrivals(exp.soc.netlist.num_flops());
    for (FlopId f = 0; f < exp.soc.netlist.num_flops(); ++f) {
      arrivals[f] = exp.soc.clock_tree.nominal_arrival_ns(f);
    }
    const StaReport sta = run_sta(exp.soc.netlist, dm, *exp.lib, arrivals);
    const double tmin = sta.min_period_ns(0.1, arrivals, exp.soc.netlist);
    t.add_row({"STA min period / Fmax", "10 ns / 100 MHz (timing closed)",
               TextTable::num(tmin, 2) + " ns / " +
                   TextTable::num(1000.0 / tmin, 0) + " MHz"});
  }
  std::printf("%s\n", t.render("Table 1: design characteristics").c_str());

  std::printf("%s\n", format_design_stats(s).c_str());
}

void BM_FaultEnumeration(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  for (auto _ : state) {
    auto faults = enumerate_faults(exp.soc.netlist);
    benchmark::DoNotOptimize(faults);
  }
}
BENCHMARK(BM_FaultEnumeration);

void BM_FaultCollapsing(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  for (auto _ : state) {
    auto collapsed = collapse_faults(exp.soc.netlist, exp.all_faults);
    benchmark::DoNotOptimize(collapsed);
  }
}
BENCHMARK(BM_FaultCollapsing);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("table1_design", "Table 1", "design characteristics");
  run.phase("table");
  scap::print_table1();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
