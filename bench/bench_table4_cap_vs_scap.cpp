// Table 4 -- CAP vs SCAP for one launch-off-capture pattern.
//
// Paper: one TetraMAX random-fill pattern on clka; STW 8.34 ns against a
// 20 ns tester cycle, so the switching-window power (SCAP) is > 2x the
// cycle-average power (CAP): 118.6 -> 284.3 mW class numbers, and the worst
// average IR-drop measured over the SCAP window roughly doubles vs the CAP
// window (0.128/0.134 V -> ~2x on VDD/VSS).
#include "bench_common.h"

#include "power/dynamic_ir.h"

namespace scap {
namespace {

void print_table4() {
  const Experiment& exp = bench::experiment();
  const auto& profile = bench::conventional_scap();
  const auto& patterns = bench::conventional_flow().patterns;

  // The paper picks a representative high-activity pattern.
  std::size_t pick = 0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (profile[i].num_toggles > profile[pick].num_toggles) pick = i;
  }
  const ScapReport& rep = profile[pick];

  // Dynamic rail solve over the two windows: CAP spreads the charge over the
  // full tester cycle, SCAP concentrates it in the switching window.
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  const PatternAnalysis pa =
      analyzer.analyze(exp.ctx, patterns.patterns[pick]);
  SimTrace cap_window = pa.trace;
  cap_window.last_toggle_ns = rep.period_ns;  // average over the full cycle
  const DynamicIrReport ir_cap = analyze_pattern_ir(
      exp.soc.netlist, exp.soc.placement, exp.soc.parasitics, *exp.lib,
      exp.soc.floorplan, exp.grid, cap_window, &exp.soc.clock_tree,
      exp.ctx.domain);
  const DynamicIrReport ir_scap = analyze_pattern_ir(
      exp.soc.netlist, exp.soc.placement, exp.soc.parasitics, *exp.lib,
      exp.soc.floorplan, exp.grid, pa.trace, &exp.soc.clock_tree,
      exp.ctx.domain);

  std::printf("pattern %zu of the random-fill clka set: STW %.2f ns, tester "
              "cycle %.0f ns (paper: 8.34 ns / 20 ns)\n\n",
              pick, rep.stw_ns, rep.period_ns);

  TextTable t({"model", "P VDD [mW]", "P VSS [mW]", "worst VDD drop [V]",
               "worst VSS rise [V]"});
  t.add_row({"CAP", TextTable::num(rep.cap_mw(Rail::kVdd), 2),
             TextTable::num(rep.cap_mw(Rail::kVss), 2),
             TextTable::num(ir_cap.worst_vdd_v, 3),
             TextTable::num(ir_cap.worst_vss_v, 3)});
  t.add_row({"SCAP", TextTable::num(rep.scap_mw(Rail::kVdd), 2),
             TextTable::num(rep.scap_mw(Rail::kVss), 2),
             TextTable::num(ir_scap.worst_vdd_v, 3),
             TextTable::num(ir_scap.worst_vss_v, 3)});
  std::printf("%s\n", t.render("Table 4: CAP vs SCAP, one pattern").c_str());

  const double power_ratio = rep.scap_mw(Rail::kVdd) / rep.cap_mw(Rail::kVdd);
  const double ir_ratio = ir_scap.worst_vdd_v / std::max(1e-12, ir_cap.worst_vdd_v);
  std::printf("Shape vs paper: SCAP/CAP power ratio %.2fx (paper >2x);\n"
              "  SCAP-window worst IR-drop / CAP-window: %.2fx (paper ~2x)\n\n",
              power_ratio, ir_ratio);
}

void BM_ScapOnePattern(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  const auto& patterns = bench::conventional_flow().patterns;
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto pa = analyzer.analyze(
        exp.ctx, patterns.patterns[i++ % patterns.size()]);
    benchmark::DoNotOptimize(pa.scap.stw_ns);
  }
}
BENCHMARK(BM_ScapOnePattern)->Unit(benchmark::kMillisecond);

void BM_DynamicIrOnePattern(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  const auto& patterns = bench::conventional_flow().patterns;
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  const auto pa = analyzer.analyze(exp.ctx, patterns.patterns[0]);
  for (auto _ : state) {
    auto rep = analyze_pattern_ir(exp.soc.netlist, exp.soc.placement,
                                  exp.soc.parasitics, *exp.lib,
                                  exp.soc.floorplan, exp.grid, pa.trace,
                                  &exp.soc.clock_tree, exp.ctx.domain);
    benchmark::DoNotOptimize(rep.worst_vdd_v);
  }
}
BENCHMARK(BM_DynamicIrOnePattern)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("table4_cap_vs_scap", "Table 4", "CAP vs SCAP power/IR for one pattern");
  run.phase("table");
  scap::print_table4();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
