// Ablation -- launch-off-capture vs launch-off-shift under the SCAP model.
//
// The paper (Section 1.1) surveys both schemes and builds its method on LOC.
// This bench quantifies the textbook trade-off on the same SOC: LOS reaches
// higher coverage faster (S2 is fully controllable through the chains) but
// its launch shift toggles every scan cell in every chain -- including held
// clock domains -- so its per-pattern SCAP and threshold-violation rate are
// far worse, which is exactly why a supply-noise-aware flow prefers LOC.
#include "bench_common.h"

#include "util/stats.h"

namespace scap {
namespace {

struct SchemeRun {
  std::string name;
  AtpgResult result;
  RunningStats b5_scap;
  std::size_t violations = 0;
  double mean_launches = 0.0;
};

SchemeRun run_scheme(const std::string& name, const TestContext& ctx) {
  const Experiment& exp = bench::experiment();
  SchemeRun out;
  out.name = name;
  AtpgEngine engine(exp.soc.netlist, ctx);
  AtpgOptions opt = bench::bench_atpg_options();
  opt.fill = FillMode::kRandom;
  out.result = engine.run(exp.faults, opt);

  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  const std::size_t hot = Experiment::kHotBlock;
  double launches = 0.0;
  for (const Pattern& p : out.result.patterns.patterns) {
    const PatternAnalysis pa = analyzer.analyze(ctx, p);
    out.b5_scap.add(ScapThresholds::block_scap_mw(pa.scap, hot));
    launches += static_cast<double>(pa.launched_flops);
    out.violations +=
        exp.thresholds.violates(pa.scap, hot) ? 1 : 0;
  }
  if (!out.result.patterns.patterns.empty()) {
    out.mean_launches =
        launches / static_cast<double>(out.result.patterns.size());
  }
  return out;
}

void print_ablation() {
  const Experiment& exp = bench::experiment();
  const TestContext los = TestContext::for_domain_los(
      exp.soc.netlist, exp.ctx.domain, exp.soc.scan.chains);

  const TestContext enh =
      TestContext::for_domain_enhanced(exp.soc.netlist, exp.ctx.domain);

  const SchemeRun loc = run_scheme("launch-off-capture", exp.ctx);
  const SchemeRun losr = run_scheme("launch-off-shift", los);
  const SchemeRun enhr = run_scheme("enhanced scan", enh);

  TextTable t({"scheme", "patterns", "fault coverage", "launch flops/pat",
               "B5 SCAP mean [mW]", "B5 violations"});
  for (const SchemeRun* r : {&loc, &losr, &enhr}) {
    t.add_row({r->name, std::to_string(r->result.patterns.size()),
               TextTable::num(100.0 * r->result.stats.fault_coverage(), 2) +
                   "%",
               TextTable::num(r->mean_launches, 0),
               TextTable::num(r->b5_scap.mean(), 1),
               std::to_string(r->violations) + " (" +
                   TextTable::num(100.0 * static_cast<double>(r->violations) /
                                      static_cast<double>(
                                          r->result.patterns.size()),
                                  1) +
                   "%)"});
  }
  std::printf("%s\n",
              t.render("Ablation: LOC vs LOS vs enhanced scan (random-fill, clka)").c_str());
  std::printf("Textbook shape: controllability (and coverage) grows LOC -> "
              "LOS -> enhanced scan,\nbut so does launch switching; and "
              "enhanced scan's hold cells cost ~2x cell area,\nwhich is why "
              "industry (and the paper) settle on LOC.\n\n");
}

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("ablation_los", "Ablation", "LOC vs LOS launch schemes");
  run.phase("table");
  scap::print_ablation();
  (void)argc;
  (void)argv;
  return 0;
}
