// Micro-benchmarks of the library's computational kernels, plus a
// thread-scaling sweep of the rt-parallelized kernels.
#include "bench_common.h"

#include <chrono>
#include <functional>
#include <iterator>
#include <span>
#include <thread>

#include "atpg/fault_sim.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "power/dynamic_ir.h"
#include "rt/thread_pool.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace scap {
namespace {

void BM_LogicFrameScalar(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  LogicSim sim(exp.soc.netlist);
  Rng rng(1);
  std::vector<std::uint8_t> s1(exp.soc.netlist.num_flops());
  for (auto& b : s1) b = static_cast<std::uint8_t>(rng.below(2));
  std::vector<std::uint8_t> nets;
  for (auto _ : state) {
    sim.eval_frame(s1, exp.ctx.pi_values, nets);
    benchmark::DoNotOptimize(nets.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(exp.soc.netlist.num_gates()));
}
BENCHMARK(BM_LogicFrameScalar);

void BM_LogicFrameWord64(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  WordSim sim(exp.soc.netlist);
  Rng rng(1);
  std::vector<std::uint64_t> s1(exp.soc.netlist.num_flops());
  for (auto& w : s1) w = rng.word();
  std::vector<std::uint64_t> pi(exp.soc.netlist.primary_inputs().size(), 0);
  std::vector<std::uint64_t> nets;
  for (auto _ : state) {
    sim.eval_frame(s1, pi, nets);
    benchmark::DoNotOptimize(nets.data());
  }
  // 64 patterns per evaluation.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(exp.soc.netlist.num_gates()));
}
BENCHMARK(BM_LogicFrameWord64);

void BM_EventSimPattern(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  Rng rng(2);
  Pattern p;
  p.s1.resize(exp.soc.netlist.num_flops());
  for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  for (auto _ : state) {
    auto pa = analyzer.analyze(exp.ctx, p);
    benchmark::DoNotOptimize(pa.trace.num_events_processed);
  }
}
BENCHMARK(BM_EventSimPattern)->Unit(benchmark::kMillisecond);

void BM_EventSimPatternStreaming(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  Rng rng(2);
  Pattern p;
  p.s1.resize(exp.soc.netlist.num_flops());
  for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  for (auto _ : state) {
    const ScapReport& rep = analyzer.analyze_scap(exp.ctx, p);
    benchmark::DoNotOptimize(rep.num_toggles);
  }
  state.counters["reused_runs"] =
      static_cast<double>(analyzer.workspace().reused_runs());
}
BENCHMARK(BM_EventSimPatternStreaming)->Unit(benchmark::kMillisecond);

void BM_GridSolveBothRails(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  Rng rng(3);
  Pattern p;
  p.s1.resize(exp.soc.netlist.num_flops());
  for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  const auto pa = analyzer.analyze(exp.ctx, p);
  for (auto _ : state) {
    auto rep = analyze_pattern_ir(exp.soc.netlist, exp.soc.placement,
                                  exp.soc.parasitics, *exp.lib,
                                  exp.soc.floorplan, exp.grid, pa.trace,
                                  &exp.soc.clock_tree, exp.ctx.domain);
    benchmark::DoNotOptimize(rep.worst_vdd_v);
  }
}
BENCHMARK(BM_GridSolveBothRails)->Unit(benchmark::kMillisecond);

void BM_PodemImplication(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  Podem podem(exp.soc.netlist, exp.ctx);
  Rng rng(4);
  std::vector<std::uint8_t> s1(exp.soc.netlist.num_flops());
  for (auto& b : s1) b = static_cast<std::uint8_t>(rng.below(2));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        podem.probe(exp.faults[i++ % exp.faults.size()], s1));
  }
}
BENCHMARK(BM_PodemImplication)->Unit(benchmark::kMillisecond);

void BM_ClockTreeSynthesis(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  for (auto _ : state) {
    auto ct = ClockTree::synthesize(exp.soc.netlist, exp.soc.placement,
                                    *exp.lib);
    benchmark::DoNotOptimize(ct.buffer_count());
  }
}
BENCHMARK(BM_ClockTreeSynthesis)->Unit(benchmark::kMillisecond);

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Strong-scaling sweep of the three rt-parallelized kernels at 1/2/4/8
/// global pool threads. Speedup and parallel efficiency (vs the 1-thread
/// run of the same kernel) are printed and recorded as obs gauges, so they
/// land in BENCH_kernels.json. On a machine with fewer physical cores than
/// the sweep point the extra threads just time-slice; efficiency then reads
/// below 1/T by design, not by defect.
void run_thread_scaling_sweep() {
  const Experiment& exp = bench::experiment();
  const Netlist& nl = exp.soc.netlist;

  const PatternSet pats = random_pattern_set(192, exp.ctx.num_vars(), 2007);
  const std::span<const Pattern> scap_pats =
      std::span<const Pattern>(pats.patterns)
          .first(std::min<std::size_t>(24, pats.size()));

  PowerGridOptions gopt;
  gopt.nx = 512;
  gopt.ny = 512;  // kAuto resolves to the multigrid solver at this size
  const PowerGrid big_grid(exp.soc.floorplan, gopt);
  std::vector<Point> where;
  std::vector<double> amps;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    where.push_back(exp.soc.placement.gate_pos(g));
    amps.push_back(2e-6 * static_cast<double>(1 + g % 5));
  }

  struct Kernel {
    const char* name;
    std::function<void()> body;
  };
  const Kernel kernels[] = {
      {"faultsim_grade",
       [&] {
         FaultSimulator fsim(nl, exp.ctx);
         auto first = fsim.grade(pats.patterns, exp.faults);
         benchmark::DoNotOptimize(first.data());
       }},
      {"grid_solve_512x512",
       [&] {
         benchmark::DoNotOptimize(
             big_grid.solve(where, amps, /*vdd_rail=*/true).iterations);
       }},
      {"scap_fanout",
       [&] {
         benchmark::DoNotOptimize(
             scap_profile_patterns(exp.soc, *exp.lib, exp.ctx, scap_pats)
                 .size());
       }},
  };
  constexpr std::size_t kThreads[] = {1, 2, 4, 8};

  std::printf("\nThread-scaling sweep (%u hardware threads on this host):\n",
              std::thread::hardware_concurrency());
  TextTable table({"kernel", "t=1 ms", "t=2 ms", "t=4 ms", "t=8 ms",
                   "speedup@4", "efficiency@4"});
  for (const Kernel& k : kernels) {
    double ms[std::size(kThreads)];
    for (std::size_t i = 0; i < std::size(kThreads); ++i) {
      rt::ThreadPool::set_global_concurrency(kThreads[i]);
      k.body();  // warm-up: fault caches, page in buffers
      // Best of three timed runs per point: single-shot wall clock on a
      // shared (often single-core) host swings far more than the speedup
      // deltas the rt.sweep gates pin down.
      ms[i] = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        if (obs::prof_enabled()) obs::prof_reset();  // profile one run only
        ms[i] = std::min(ms[i], wall_ms(k.body));
      }
      obs::observe("rt.sweep." + std::string(k.name) + ".t" +
                       std::to_string(kThreads[i]) + "_ms",
                   ms[i]);
      if (obs::prof_enabled()) {
        const obs::PoolProfile prof = obs::collect_pool_profile();
        obs::export_pool_profile(prof, obs::Registry::global(),
                                 "rt.prof." + std::string(k.name) + ".t" +
                                     std::to_string(kThreads[i]));
        if (kThreads[i] == 4 && !prof.empty()) {
          std::printf("\nScheduler profile: %s at t=4\n%s", k.name,
                      obs::format_pool_report(prof).c_str());
        }
      }
    }
    const double speedup4 = ms[2] > 0.0 ? ms[0] / ms[2] : 0.0;
    obs::observe("rt.sweep." + std::string(k.name) + ".t4_speedup", speedup4);
    obs::observe("rt.sweep." + std::string(k.name) + ".t4_efficiency",
                 speedup4 / 4.0);
    table.add_row({k.name, TextTable::num(ms[0], 1), TextTable::num(ms[1], 1),
                   TextTable::num(ms[2], 1), TextTable::num(ms[3], 1),
                   TextTable::num(speedup4, 2),
                   TextTable::num(speedup4 / 4.0, 2)});
  }
  rt::ThreadPool::set_global_concurrency(0);  // back to the env default
  std::printf("%s\n", table.render().c_str());
}

/// Head-to-head 512x512 PDN solve at one pool thread: multigrid to full
/// tolerance against SOR on the same mesh and load set. SOR's asymptotic
/// sweep count at this size is ~20k (spectral radius ~1 - O(1/n^2)), so the
/// SOR side runs under a sweep cap and its time -- and therefore the
/// recorded speedup -- is a LOWER BOUND on the true gap. The roadmap floor
/// is >= 3x; the gauge feeds bench_diff's warn-only trend gate.
void run_grid_solver_comparison() {
  const Experiment& exp = bench::experiment();
  const Netlist& nl = exp.soc.netlist;
  std::vector<Point> where;
  std::vector<double> amps;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    where.push_back(exp.soc.placement.gate_pos(g));
    amps.push_back(2e-6 * static_cast<double>(1 + g % 5));
  }

  constexpr std::uint32_t kSorSweepCap = 1500;
  PowerGridOptions mg_opt;
  mg_opt.nx = 512;
  mg_opt.ny = 512;
  mg_opt.solver = GridSolver::kMultigrid;
  PowerGridOptions sor_opt = mg_opt;
  sor_opt.solver = GridSolver::kSor;
  sor_opt.max_iterations = kSorSweepCap;

  rt::ThreadPool::set_global_concurrency(1);
  const PowerGrid mg_grid(exp.soc.floorplan, mg_opt);
  const PowerGrid sor_grid(exp.soc.floorplan, sor_opt);
  GridSolution mg_sol, sor_sol;
  double mg_ms = 1e300, sor_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    mg_ms = std::min(mg_ms, wall_ms([&] {
                       mg_sol = mg_grid.solve(where, amps, /*vdd_rail=*/true);
                     }));
  }
  for (int rep = 0; rep < 2; ++rep) {
    sor_ms = std::min(sor_ms, wall_ms([&] {
                        sor_sol =
                            sor_grid.solve(where, amps, /*vdd_rail=*/true);
                      }));
  }
  rt::ThreadPool::set_global_concurrency(0);

  const double speedup = mg_ms > 0.0 ? sor_ms / mg_ms : 0.0;
  obs::observe("grid.mg_512x512.t1_ms", mg_ms);
  obs::observe("grid.mg_512x512.cycles", mg_sol.iterations);
  obs::observe("grid.sor_512x512.capped_t1_ms", sor_ms);
  obs::observe("grid.mg_vs_sor_512x512.t1_speedup", speedup);
  std::printf(
      "\n512x512 PDN solve at t=1: multigrid %.1f ms (%u W-cycles, "
      "converged=%d, residual %.2e V) vs SOR %.1f ms (capped at %u sweeps, "
      "converged=%d) -> >= %.1fx\n",
      mg_ms, mg_sol.iterations, mg_sol.converged ? 1 : 0,
      mg_sol.final_delta_v, sor_ms, kSorSweepCap, sor_sol.converged ? 1 : 0,
      speedup);
}

/// Per-pattern streaming analysis throughput on one warm PatternAnalyzer.
/// After a short warm-up that sizes the workspace pools, every subsequent
/// pattern must be served allocation-free: grown_runs stalls while runs keeps
/// climbing, which is the zero-allocation evidence recorded in
/// BENCH_kernels.json alongside the patterns/sec number. Returns the
/// measured patterns/sec (the baseline the static screen is compared to).
double run_streaming_throughput() {
  const Experiment& exp = bench::experiment();
  const PatternSet pats = random_pattern_set(256, exp.ctx.num_vars(), 2007);
  PatternAnalyzer analyzer(exp.soc, *exp.lib);

  // Warm pass: lets every pool reach its high-water mark for this pattern
  // set. The measured pass below then runs in steady state.
  for (const Pattern& p : pats.patterns) {
    analyzer.analyze_scap(exp.ctx, p);
  }
  const std::size_t grown_after_warmup = analyzer.workspace().grown_runs();

  const double ms = wall_ms([&] {
    for (const Pattern& p : pats.patterns) {
      benchmark::DoNotOptimize(analyzer.analyze_scap(exp.ctx, p).num_toggles);
    }
  });
  const double pps =
      ms > 0.0 ? 1000.0 * static_cast<double>(pats.size()) / ms : 0.0;
  const std::size_t grown_steady =
      analyzer.workspace().grown_runs() - grown_after_warmup;

  obs::observe("eventsim.patterns_per_sec", pps);
  obs::observe("eventsim.workspace.reuse",
               static_cast<double>(analyzer.workspace().reused_runs()));
  obs::observe("eventsim.workspace.grown_steady_state",
               static_cast<double>(grown_steady));
  std::printf(
      "\nStreaming per-pattern analysis: %zu patterns in %.1f ms "
      "(%.0f patterns/sec); workspace runs=%zu grown=%zu "
      "steady-state growths=%zu (0 == allocation-free)\n",
      pats.size(), ms, pps, analyzer.workspace().runs(),
      analyzer.workspace().grown_runs(), grown_steady);
  return pps;
}

/// Tier-1 static screen throughput (PatternAnalyzer::screen_static) against
/// the event-sim baseline measured above, plus the fraction of patterns the
/// two-tier cascade proves clean without simulation. The speedup is the
/// whole point of the cascade: the roadmap gate is >= 5x patterns/sec.
void run_static_screen_throughput(double eventsim_pps) {
  const Experiment& exp = bench::experiment();
  const PatternSet pats = random_pattern_set(256, exp.ctx.num_vars(), 2007);
  PatternAnalyzer analyzer(exp.soc, *exp.lib);

  // Warm pass: builds the lazy StaticScapModel (levelization) and sizes the
  // scratch vectors; the measured pass is steady-state.
  for (const Pattern& p : pats.patterns) {
    analyzer.screen_static(exp.ctx, p);
  }
  const double ms = wall_ms([&] {
    for (const Pattern& p : pats.patterns) {
      benchmark::DoNotOptimize(
          analyzer.screen_static(exp.ctx, p).toggle_bound);
    }
  });
  const double pps =
      ms > 0.0 ? 1000.0 * static_cast<double>(pats.size()) / ms : 0.0;
  const double speedup = eventsim_pps > 0.0 ? pps / eventsim_pps : 0.0;

  const ScapScreenResult screen =
      scap_screen_patterns(exp.soc, *exp.lib, exp.ctx, pats.patterns,
                           exp.thresholds, Experiment::kHotBlock);
  const double clean_frac =
      static_cast<double>(screen.statically_clean) /
      static_cast<double>(pats.size());

  obs::observe("screen.static.patterns_per_sec", pps);
  obs::observe("screen.static.speedup_vs_eventsim", speedup);
  obs::observe("screen.static.clean_fraction", clean_frac);
  std::printf(
      "\nStatic SCAP screen: %zu patterns in %.2f ms (%.0f patterns/sec, "
      "%.1fx event-sim); cascade skips %zu/%zu patterns "
      "(%.0f%% statically clean)\n",
      pats.size(), ms, pps, speedup, screen.statically_clean, pats.size(),
      100.0 * clean_frac);
}

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("kernels", "Kernels", "micro-benchmarks of the core engines");
  run.phase("thread_scaling");
  scap::run_thread_scaling_sweep();
  run.phase("grid_solver_comparison");
  scap::run_grid_solver_comparison();
  run.phase("streaming_throughput");
  const double eventsim_pps = scap::run_streaming_throughput();
  run.phase("static_screen");
  scap::run_static_screen_throughput(eventsim_pps);
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
