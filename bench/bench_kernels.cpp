// Micro-benchmarks of the library's computational kernels.
#include "bench_common.h"

#include "power/dynamic_ir.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace scap {
namespace {

void BM_LogicFrameScalar(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  LogicSim sim(exp.soc.netlist);
  Rng rng(1);
  std::vector<std::uint8_t> s1(exp.soc.netlist.num_flops());
  for (auto& b : s1) b = static_cast<std::uint8_t>(rng.below(2));
  std::vector<std::uint8_t> nets;
  for (auto _ : state) {
    sim.eval_frame(s1, exp.ctx.pi_values, nets);
    benchmark::DoNotOptimize(nets.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(exp.soc.netlist.num_gates()));
}
BENCHMARK(BM_LogicFrameScalar);

void BM_LogicFrameWord64(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  WordSim sim(exp.soc.netlist);
  Rng rng(1);
  std::vector<std::uint64_t> s1(exp.soc.netlist.num_flops());
  for (auto& w : s1) w = rng.word();
  std::vector<std::uint64_t> pi(exp.soc.netlist.primary_inputs().size(), 0);
  std::vector<std::uint64_t> nets;
  for (auto _ : state) {
    sim.eval_frame(s1, pi, nets);
    benchmark::DoNotOptimize(nets.data());
  }
  // 64 patterns per evaluation.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(exp.soc.netlist.num_gates()));
}
BENCHMARK(BM_LogicFrameWord64);

void BM_EventSimPattern(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  Rng rng(2);
  Pattern p;
  p.s1.resize(exp.soc.netlist.num_flops());
  for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  for (auto _ : state) {
    auto pa = analyzer.analyze(exp.ctx, p);
    benchmark::DoNotOptimize(pa.trace.num_events_processed);
  }
}
BENCHMARK(BM_EventSimPattern)->Unit(benchmark::kMillisecond);

void BM_GridSolveBothRails(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  Rng rng(3);
  Pattern p;
  p.s1.resize(exp.soc.netlist.num_flops());
  for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
  const auto pa = analyzer.analyze(exp.ctx, p);
  for (auto _ : state) {
    auto rep = analyze_pattern_ir(exp.soc.netlist, exp.soc.placement,
                                  exp.soc.parasitics, *exp.lib,
                                  exp.soc.floorplan, exp.grid, pa.trace,
                                  &exp.soc.clock_tree, exp.ctx.domain);
    benchmark::DoNotOptimize(rep.worst_vdd_v);
  }
}
BENCHMARK(BM_GridSolveBothRails)->Unit(benchmark::kMillisecond);

void BM_PodemImplication(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  Podem podem(exp.soc.netlist, exp.ctx);
  Rng rng(4);
  std::vector<std::uint8_t> s1(exp.soc.netlist.num_flops());
  for (auto& b : s1) b = static_cast<std::uint8_t>(rng.below(2));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        podem.probe(exp.faults[i++ % exp.faults.size()], s1));
  }
}
BENCHMARK(BM_PodemImplication)->Unit(benchmark::kMillisecond);

void BM_ClockTreeSynthesis(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  for (auto _ : state) {
    auto ct = ClockTree::synthesize(exp.soc.netlist, exp.soc.placement,
                                    *exp.lib);
    benchmark::DoNotOptimize(ct.buffer_count());
  }
}
BENCHMARK(BM_ClockTreeSynthesis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("kernels", "Kernels", "micro-benchmarks of the core engines");
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
