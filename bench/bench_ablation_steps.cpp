// Ablation -- why the stepwise block targeting matters.
//
// Section 3.1's observation: even with a quiet fill, targeting all blocks at
// once lets the greedy ATPG pack faults from every block into the early
// patterns (few don't-care bits anywhere -> the fill has nothing to keep
// quiet). Handing the tool one block subset at a time leaves the other
// blocks fully X, which the quiet fill then silences. This bench compares
// one-step quiet fill against the paper's 3-step plan, plus a per-block-step
// granularity sweep.
#include "bench_common.h"

namespace scap {
namespace {

struct PlanRun {
  std::string name;
  FlowResult flow;
  std::size_t violations = 0;
};

PlanRun run_plan(const std::string& name, const StepPlan& plan) {
  const Experiment& exp = bench::experiment();
  AtpgOptions opt = bench::bench_atpg_options();
  opt.fill = FillMode::kQuiet;
  PlanRun out;
  out.name = name;
  out.flow =
      run_power_aware_atpg(exp.soc.netlist, exp.ctx, exp.faults, plan, opt);
  const auto profile =
      scap_profile(exp.soc, *exp.lib, exp.ctx, out.flow.patterns);
  out.violations =
      exp.thresholds.count_violations(profile, Experiment::kHotBlock);
  return out;
}

void print_ablation() {
  const Experiment& exp = bench::experiment();
  const std::size_t nb = exp.soc.netlist.block_count();

  std::vector<PlanRun> runs;
  {
    StepPlan one;
    one.steps.push_back(
        StepPlan::Step{std::vector<std::uint8_t>(nb, 1), 1.0});
    runs.push_back(run_plan("1 step (all blocks at once)", one));
  }
  {
    StepPlan unthrottled = StepPlan::paper_default(nb, 1.0);
    runs.push_back(run_plan("3 steps, unthrottled B5 step", unthrottled));
  }
  runs.push_back(run_plan("3 steps + B5 care budget (paper wishlist)",
                          StepPlan::paper_default(nb)));
  {
    StepPlan per_block;
    for (std::size_t b : {0u, 1u, 2u, 3u, 5u, 4u}) {  // B5 last
      std::vector<std::uint8_t> mask(nb, 0);
      mask[b] = 1;
      per_block.steps.push_back(
          StepPlan::Step{mask, b == 4u ? 0.04 : 1.0});
    }
    runs.push_back(run_plan("6 steps (one block at a time, B5 last)",
                            per_block));
  }

  TextTable t({"plan", "patterns", "fault coverage", "B5 violations"});
  for (const PlanRun& r : runs) {
    t.add_row({r.name, std::to_string(r.flow.patterns.size()),
               TextTable::num(100.0 * r.flow.stats.fault_coverage(), 2) + "%",
               std::to_string(r.violations)});
  }
  std::printf("%s\n",
              t.render("Ablation: step-plan granularity (quiet fill)").c_str());
  std::printf("Expected shape: finer steps cost patterns but keep untargeted "
              "blocks X-rich,\nwhich is what the quiet fill converts into low "
              "B5 SCAP.\n\n");
}

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("ablation_steps", "Ablation", "step-plan granularity");
  run.phase("table");
  scap::print_ablation();
  (void)argc;
  (void)argv;
  return 0;
}
