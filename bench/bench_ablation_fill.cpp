// Ablation -- don't-care fill policy.
//
// The paper tried TetraMAX's three fill options and reports that fill-0 gave
// the best results on Turbo-Eagle (its blocks idle quietly from the all-zero
// state). This bench regenerates the comparison on the synthetic SOC and
// adds the library's two extensions: fill-quiet (near-fixed-point idle
// state) and per-block fill (the "more ideal scenario" of Section 3.1).
#include "bench_common.h"

namespace scap {
namespace {

struct FillRun {
  std::string name;
  FlowResult flow;
  std::size_t violations = 0;
};

FillRun run_fill(const std::string& name, AtpgOptions opt) {
  const Experiment& exp = bench::experiment();
  FillRun out;
  out.name = name;
  out.flow = run_conventional_atpg(exp.soc.netlist, exp.ctx, exp.faults, opt);
  const auto profile =
      scap_profile(exp.soc, *exp.lib, exp.ctx, out.flow.patterns);
  out.violations =
      exp.thresholds.count_violations(profile, Experiment::kHotBlock);
  return out;
}

void print_ablation() {
  std::vector<FillRun> runs;
  for (FillMode mode : {FillMode::kRandom, FillMode::kFill0, FillMode::kFill1,
                        FillMode::kAdjacent, FillMode::kQuiet}) {
    AtpgOptions opt = bench::bench_atpg_options();
    opt.fill = mode;
    runs.push_back(run_fill(fill_mode_name(mode), opt));
  }
  // Per-block extension: quiet everywhere except random in the well-fed
  // corner blocks (keeps their fortuitous coverage without waking B5).
  {
    const Experiment& exp = bench::experiment();
    AtpgOptions opt = bench::bench_atpg_options();
    opt.per_block_fill.assign(exp.soc.netlist.block_count(), FillMode::kQuiet);
    opt.per_block_fill[0] = FillMode::kRandom;
    opt.per_block_fill[1] = FillMode::kRandom;
    opt.per_block_fill[2] = FillMode::kRandom;
    opt.per_block_fill[3] = FillMode::kRandom;
    runs.push_back(run_fill("per-block (random B1-B4, quiet B5/B6)", opt));
  }

  TextTable t({"fill policy", "patterns", "fault coverage", "B5 violations",
               "violation rate"});
  for (const FillRun& r : runs) {
    t.add_row({r.name, std::to_string(r.flow.patterns.size()),
               TextTable::num(100.0 * r.flow.stats.fault_coverage(), 2) + "%",
               std::to_string(r.violations),
               TextTable::num(100.0 * static_cast<double>(r.violations) /
                                  static_cast<double>(r.flow.patterns.size()),
                              1) +
                   "%"});
  }
  std::printf("%s\n",
              t.render("Ablation: fill policy vs pattern count / coverage / "
                       "B5 SCAP violations (single-step ATPG)")
                  .c_str());
  std::printf("Paper: fill-0 won on Turbo-Eagle; on a design whose idle state "
              "is not all-zero,\nfill-quiet is the faithful equivalent (see "
              "DESIGN.md substitutions).\n\n");
}

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("ablation_fill", "Ablation", "don't-care fill policies");
  run.phase("table");
  scap::print_ablation();
  (void)argc;
  (void)argv;
  return 0;
}
