// Figure 6 -- SCAP per pattern in B5 for the NEW (power-aware) pattern set.
//
// Paper: 6490 clka patterns. The prefix (~4000 patterns, Steps 1-2 targeting
// B1-B4 and B6) shows low and nearly constant B5 SCAP because the fill keeps
// B5 quiet; a burst appears when Step 3 finally targets B5's own faults (the
// greedy ATPG is power-unaware within a block); only ~57 patterns stay above
// the threshold vs 2253 for random fill, at ~+8-11% pattern count.
#include "bench_common.h"

#include "atpg/quiet_state.h"
#include "util/stats.h"

namespace scap {
namespace {

void print_fig6() {
  const Experiment& exp = bench::experiment();
  const auto& profile = bench::power_aware_scap();
  const FlowResult& flow = bench::power_aware_flow();
  const std::size_t hot = Experiment::kHotBlock;
  const double threshold = exp.thresholds.block_mw[hot];

  bench::print_series("B5 SCAP per pattern [mW]", profile.size(),
                      [&](std::size_t i) {
                        return ScapThresholds::block_scap_mw(profile[i], hot);
                      });

  std::printf("\nstep starts: ");
  for (std::size_t s : flow.step_start) std::printf("%zu ", s);
  std::printf("(B5 targeted from pattern %zu on)\n", flow.step_start[2]);

  // Quiet prefix vs burst statistics.
  RunningStats prefix, burst;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    (i < flow.step_start[2] ? prefix : burst)
        .add(ScapThresholds::block_scap_mw(profile[i], hot));
  }
  std::printf("B5 SCAP during steps 1-2: mean %.1f mW (max %.1f); during "
              "step 3: mean %.1f mW (max %.1f)\n",
              prefix.mean(), prefix.max(), burst.mean(), burst.max());

  const std::size_t viol = exp.thresholds.count_violations(profile, hot);
  const auto& conv_profile = bench::conventional_scap();
  const std::size_t conv_viol =
      exp.thresholds.count_violations(conv_profile, hot);
  std::printf("patterns above the %.1f mW threshold: %zu / %zu (%.1f%%)  "
              "[conventional: %zu / %zu]\n",
              threshold, viol, profile.size(),
              100.0 * static_cast<double>(viol) /
                  static_cast<double>(profile.size()),
              conv_viol, conv_profile.size());
  std::printf("paper: 57 / 6490 (0.9%%) vs 2253 / 5846 for random fill, at "
              "+8%% pattern count\n\n");
}

void BM_QuietStateSearch(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  for (auto _ : state) {
    auto qs = compute_quiet_state(exp.soc.netlist, exp.ctx);
    benchmark::DoNotOptimize(qs.residual_launches);
  }
}
BENCHMARK(BM_QuietStateSearch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("fig6_scap_poweraware", "Figure 6", "per-pattern SCAP in B5, power-aware stepwise set");
  run.phase("table");
  scap::print_fig6();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
