// Shared infrastructure for the benchmark binaries.
//
// Every bench regenerates one table or figure of the paper on the scaled
// synthetic SOC, printing our measured values next to the paper's published
// ones (shape comparison -- the substrate is a simulator, not the authors'
// 180 nm testbed), and then runs google-benchmark micro-kernels for the
// computation at that bench's core.
//
// SCAPGEN_BENCH_SCALE overrides the SOC scale (default 0.04 => ~900 flops;
// the paper's Turbo-Eagle would be scale 1.0).
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/experiment.h"
#include "core/power_aware.h"
#include "core/validation.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/table.h"

namespace scap::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("SCAPGEN_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 0.04;
}

/// The canonical experiment, built once per process.
inline const Experiment& experiment() {
  static const Experiment* exp =
      new Experiment(Experiment::standard(bench_scale(), /*seed=*/2007));
  return *exp;
}

/// ATPG options used by all pattern-generation benches (deterministic).
inline AtpgOptions bench_atpg_options() {
  AtpgOptions opt;
  opt.seed = 2007;
  opt.backtrack_limit = 32;
  opt.chains = &experiment().soc.scan.chains;
  return opt;
}

/// Conventional random-fill flow (the paper's baseline), built once.
inline const FlowResult& conventional_flow() {
  static const FlowResult* flow = [] {
    const Experiment& exp = experiment();
    AtpgOptions opt = bench_atpg_options();
    opt.fill = FillMode::kRandom;
    return new FlowResult(
        run_conventional_atpg(exp.soc.netlist, exp.ctx, exp.faults, opt));
  }();
  return *flow;
}

/// The paper's stepwise power-aware flow (quiet fill), built once.
inline const FlowResult& power_aware_flow() {
  static const FlowResult* flow = [] {
    const Experiment& exp = experiment();
    AtpgOptions opt = bench_atpg_options();
    opt.fill = FillMode::kQuiet;
    return new FlowResult(run_power_aware_atpg(
        exp.soc.netlist, exp.ctx, exp.faults,
        StepPlan::paper_default(exp.soc.netlist.block_count()), opt));
  }();
  return *flow;
}

inline const std::vector<ScapReport>& conventional_scap() {
  static const auto* prof = [] {
    const Experiment& exp = experiment();
    return new std::vector<ScapReport>(scap_profile(
        exp.soc, *exp.lib, exp.ctx, conventional_flow().patterns));
  }();
  return *prof;
}

inline const std::vector<ScapReport>& power_aware_scap() {
  static const auto* prof = [] {
    const Experiment& exp = experiment();
    return new std::vector<ScapReport>(scap_profile(
        exp.soc, *exp.lib, exp.ctx, power_aware_flow().patterns));
  }();
  return *prof;
}

inline void print_header(const char* experiment_id, const char* what) {
  std::printf("=============================================================\n");
  std::printf("%s -- %s\n", experiment_id, what);
  std::printf("SOC scale %.3f (paper's Turbo-Eagle ~ scale 1.0), seed 2007\n",
              bench_scale());
  std::printf("=============================================================\n");
}

/// Per-process run wrapper for a bench binary: prints the usual header and,
/// on destruction, writes the machine-readable `BENCH_<slug>.json` metrics
/// artifact (schema in README.md "Observability") -- phase wall times, every
/// obs counter/gauge and per-span timer accumulated during the run. Phases
/// are marked with phase(); everything before the first mark is "setup".
/// Each phase boundary captures the registry with snapshot_and_reset, so the
/// artifact reports both per-phase metric windows (under each phase's
/// "metrics" key) and their merged cumulative totals at top level -- a
/// multi-phase bench's rt.* values no longer bleed across phases.
class BenchRun {
 public:
  BenchRun(const char* slug, const char* experiment_id, const char* what) {
    report_.name = slug;
    print_header(experiment_id, what);
    char scale[32];
    std::snprintf(scale, sizeof scale, "%.3f", bench_scale());
    report_.info.emplace_back("experiment", experiment_id);
    report_.info.emplace_back("scale", scale);
    report_.info.emplace_back("seed", "2007");
    phase_name_ = "setup";
    phase_start_ = Clock::now();
  }

  /// Close the current phase and start `name`.
  void phase(const char* name) {
    close_phase();
    phase_name_ = name;
    phase_start_ = Clock::now();
  }

  ~BenchRun() {
    close_phase();
    const std::string path = obs::bench_artifact_path(report_.name);
    const std::string body = obs::to_json(report_);
    if (obs::write_file(path, body)) {
      std::printf("\nmetrics: wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "\nmetrics: FAILED to write %s\n", path.c_str());
    }
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

 private:
  using Clock = std::chrono::steady_clock;

  void close_phase() {
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - phase_start_)
            .count();
    obs::PhaseTime pt;
    pt.name = phase_name_;
    pt.wall_ms = ms;
    pt.metrics = obs::Registry::global().snapshot_and_reset();
    report_.phases.push_back(std::move(pt));
  }

  obs::RunReport report_;
  std::string phase_name_;
  Clock::time_point phase_start_;
};

/// Down-sampled series printer for figure-style data.
template <typename Fn>
void print_series(const char* name, std::size_t n, Fn&& value,
                  std::size_t max_points = 40) {
  std::printf("%s (%zu points, down-sampled):\n  index:", name, n);
  const std::size_t step = n <= max_points ? 1 : n / max_points;
  for (std::size_t i = 0; i < n; i += step) std::printf(" %zu", i);
  std::printf("\n  value:");
  for (std::size_t i = 0; i < n; i += step) std::printf(" %.2f", value(i));
  std::printf("\n");
}

}  // namespace scap::bench
