// Price of the differential oracle: each optimized kernel benchmarked next
// to its naive reference model (ref/ref_models.h), plus the end-to-end cost
// of one fuzz scenario. The ratios documented here are why scap_fuzz keeps
// its scenarios tiny -- the references trade every optimization (workspace
// reuse, 64-way words, red-black SOR) for obviousness, and this bench keeps
// an eye on that gap staying affordable for CI smoke runs.
#include "bench_common.h"

#include <vector>

#include "atpg/fault_sim.h"
#include "ref/fuzz.h"
#include "ref/ref_models.h"
#include "ref/scenario.h"
#include "sim/scap.h"
#include "util/rng.h"

namespace scap {
namespace {

/// One analyzed pattern on the canonical experiment, shared by the sim/scap
/// pairs so both sides replay identical work.
struct RefRig {
  const Experiment& exp = bench::experiment();
  const TechLibrary& lib = *exp.lib;
  DelayModel dm{exp.soc.netlist, lib, exp.soc.parasitics};
  PatternAnalyzer analyzer{exp.soc, lib};
  Pattern pattern;
  PatternAnalysis analysis;
  std::vector<std::uint8_t> frame1;
  std::vector<Stimulus> stimuli;

  RefRig() {
    Rng rng(2007);
    pattern.s1.resize(exp.soc.netlist.num_flops());
    for (auto& b : pattern.s1) b = static_cast<std::uint8_t>(rng.below(2));
    analysis = analyzer.analyze(exp.ctx, pattern, &dm);
    frame1.assign(analyzer.frame1().begin(), analyzer.frame1().end());
    stimuli.assign(analyzer.stimuli().begin(), analyzer.stimuli().end());
  }

  static const RefRig& get() {
    static const RefRig* rig = new RefRig();
    return *rig;
  }
};

void BM_EventSimOptimized(benchmark::State& state) {
  const RefRig& rig = RefRig::get();
  PatternAnalyzer analyzer(rig.exp.soc, rig.lib);
  for (auto _ : state) {
    const auto pa = analyzer.analyze(rig.exp.ctx, rig.pattern, &rig.dm);
    benchmark::DoNotOptimize(pa.trace.num_events_processed);
  }
}
BENCHMARK(BM_EventSimOptimized)->Unit(benchmark::kMillisecond);

void BM_EventSimReference(benchmark::State& state) {
  const RefRig& rig = RefRig::get();
  const ref::EventSimRef rsim(rig.exp.soc.netlist, rig.dm);
  for (auto _ : state) {
    const SimTrace rt = rsim.run(rig.frame1, rig.stimuli);
    benchmark::DoNotOptimize(rt.num_events_processed);
  }
}
BENCHMARK(BM_EventSimReference)->Unit(benchmark::kMillisecond);

void BM_ScapOptimized(benchmark::State& state) {
  const RefRig& rig = RefRig::get();
  ScapCalculator calc(rig.exp.soc.netlist, rig.exp.soc.parasitics, rig.lib);
  for (auto _ : state) {
    const ScapReport rep =
        calc.compute(rig.analysis.trace, rig.analysis.scap.period_ns);
    benchmark::DoNotOptimize(rep.vdd_energy_total_pj);
  }
}
BENCHMARK(BM_ScapOptimized)->Unit(benchmark::kMillisecond);

void BM_ScapReference(benchmark::State& state) {
  const RefRig& rig = RefRig::get();
  for (auto _ : state) {
    const ScapReport rep =
        ref::scap_ref(rig.exp.soc.netlist, rig.exp.soc.parasitics, rig.lib,
                      rig.analysis.trace, rig.analysis.scap.period_ns);
    benchmark::DoNotOptimize(rep.vdd_energy_total_pj);
  }
}
BENCHMARK(BM_ScapReference)->Unit(benchmark::kMillisecond);

/// Word-parallel grade vs one-fault-at-a-time fixpoint on the same sample.
/// The gap here (two orders of magnitude) is the whole reason the optimized
/// fault simulator exists; keep the sample small so the reference side stays
/// in benchmark territory.
struct GradeRig {
  const Experiment& exp = bench::experiment();
  std::vector<TdfFault> sample;
  std::vector<Pattern> patterns;

  GradeRig() {
    Rng rng(7);
    std::vector<std::size_t> idx(exp.faults.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng.shuffle(idx);
    for (std::size_t k = 0; k < std::min<std::size_t>(24, idx.size()); ++k) {
      sample.push_back(exp.faults[idx[k]]);
    }
    patterns.resize(4);
    for (auto& p : patterns) {
      p.s1.resize(exp.ctx.num_vars());
      for (auto& b : p.s1) b = static_cast<std::uint8_t>(rng.below(2));
    }
  }

  static const GradeRig& get() {
    static const GradeRig* rig = new GradeRig();
    return *rig;
  }
};

void BM_FaultGradeOptimized(benchmark::State& state) {
  const GradeRig& rig = GradeRig::get();
  FaultSimulator fsim(rig.exp.soc.netlist, rig.exp.ctx);
  for (auto _ : state) {
    const auto first = fsim.grade(rig.patterns, rig.sample);
    benchmark::DoNotOptimize(first.data());
  }
}
BENCHMARK(BM_FaultGradeOptimized)->Unit(benchmark::kMillisecond);

void BM_FaultGradeReference(benchmark::State& state) {
  const GradeRig& rig = GradeRig::get();
  for (auto _ : state) {
    const auto first = ref::fault_grade_ref(rig.exp.soc.netlist, rig.exp.ctx,
                                            rig.patterns, rig.sample);
    benchmark::DoNotOptimize(first.data());
  }
}
BENCHMARK(BM_FaultGradeReference)->Unit(benchmark::kMillisecond);

void BM_GridSolveOptimized(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  PowerGridOptions opt;
  opt.nx = 16;
  opt.ny = 16;
  const PowerGrid grid(exp.soc.floorplan, opt);
  const Point p{exp.soc.floorplan.die().x1 / 2.0,
                exp.soc.floorplan.die().y1 / 2.0};
  const double amps = 0.05;
  for (auto _ : state) {
    const GridSolution sol = grid.solve(std::span<const Point>(&p, 1),
                                        std::span<const double>(&amps, 1),
                                        /*vdd_rail=*/true);
    benchmark::DoNotOptimize(sol.worst());
  }
}
BENCHMARK(BM_GridSolveOptimized)->Unit(benchmark::kMillisecond);

void BM_GridSolveReference(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  PowerGridOptions opt;
  opt.nx = 16;  // 256 nodes: the dense-matrix reference path
  opt.ny = 16;
  const Point p{exp.soc.floorplan.die().x1 / 2.0,
                exp.soc.floorplan.die().y1 / 2.0};
  const double amps = 0.05;
  for (auto _ : state) {
    const GridSolution sol = ref::grid_solve_ref(
        exp.soc.floorplan, opt, std::span<const Point>(&p, 1),
        std::span<const double>(&amps, 1), /*vdd_rail=*/true);
    benchmark::DoNotOptimize(sol.worst());
  }
}
BENCHMARK(BM_GridSolveReference)->Unit(benchmark::kMillisecond);

void BM_FuzzScenarioEndToEnd(benchmark::State& state) {
  // One full fuzz iteration on its own tiny SOC (generate, simulate, grade,
  // solve, compare) -- the unit cost behind `scap_fuzz --iterations N`.
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const ref::Scenario sc = ref::Scenario::random(seed++);
    const ref::ScenarioResult res = ref::run_scenario(sc);
    benchmark::DoNotOptimize(res.divergences.size());
  }
}
BENCHMARK(BM_FuzzScenarioEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("ref_models", "RefModels",
                            "optimized kernels vs differential-oracle "
                            "reference models");
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
