// Figure 3 -- Dynamic IR-drop maps for two patterns.
//
// Paper: P1 has very high SCAP (283.5 mW in B5), P2 sits near the threshold
// (190.7 mW); their worst average VDD drops are 0.28 V and 0.19 V, with the
// red (>10% VDD = 0.18 V) region concentrated over B5. We pick P1/P2 the
// same way from our random-fill set and render the rail maps.
#include "bench_common.h"

#include "power/dynamic_ir.h"

namespace scap {
namespace {

DynamicIrReport ir_for_pattern(std::size_t idx) {
  const Experiment& exp = bench::experiment();
  PatternAnalyzer analyzer(exp.soc, *exp.lib);
  const PatternAnalysis pa = analyzer.analyze(
      exp.ctx, bench::conventional_flow().patterns.patterns[idx]);
  return analyze_pattern_ir(exp.soc.netlist, exp.soc.placement,
                            exp.soc.parasitics, *exp.lib, exp.soc.floorplan,
                            exp.grid, pa.trace, &exp.soc.clock_tree,
                            exp.ctx.domain);
}

void print_fig3() {
  const Experiment& exp = bench::experiment();
  const auto& profile = bench::conventional_scap();
  const std::size_t hot = Experiment::kHotBlock;
  const double threshold = exp.thresholds.block_mw[hot];

  // P1: highest B5 SCAP. P2: closest to the threshold from below.
  std::size_t p1 = 0, p2 = 0;
  double best_p2 = -1e18;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double scap = ScapThresholds::block_scap_mw(profile[i], hot);
    if (scap > ScapThresholds::block_scap_mw(profile[p1], hot)) p1 = i;
    if (scap <= threshold && scap > best_p2) {
      best_p2 = scap;
      p2 = i;
    }
  }

  const double alarm = exp.lib->ir_alarm_fraction() * exp.lib->vdd();
  for (auto [name, idx, paper_scap, paper_drop] :
       {std::tuple{"P1 (high SCAP)", p1, 283.5, 0.28},
        std::tuple{"P2 (near threshold)", p2, 190.7, 0.19}}) {
    const double scap = ScapThresholds::block_scap_mw(profile[idx], hot);
    const DynamicIrReport ir = ir_for_pattern(idx);
    std::printf("%s = pattern %zu: B5 SCAP %.1f mW (paper %.1f mW), worst VDD "
                "drop %.3f V (paper %.2f V), worst in B5 %.3f V\n",
                name, idx, scap, paper_scap, ir.worst_vdd_v, paper_drop,
                ir.block_worst_vdd_v[hot]);
    std::printf("VDD-drop map ('#' = above the 10%% VDD alarm of %.2f V):\n%s\n",
                alarm,
                PowerGrid::ascii_map(ir.vdd_solution, alarm, 48).c_str());
  }

  const DynamicIrReport ir1 = ir_for_pattern(p1);
  const DynamicIrReport ir2 = ir_for_pattern(p2);
  std::printf("Shape vs paper: P1 worst drop / P2 worst drop = %.2fx "
              "(paper 0.28/0.19 = 1.47x)\n\n",
              ir1.worst_vdd_v / std::max(1e-12, ir2.worst_vdd_v));
}

void BM_AsciiMap(benchmark::State& state) {
  const DynamicIrReport ir = ir_for_pattern(0);
  for (auto _ : state) {
    auto map = PowerGrid::ascii_map(ir.vdd_solution, 0.18, 48);
    benchmark::DoNotOptimize(map);
  }
}
BENCHMARK(BM_AsciiMap);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("fig3_irdrop_maps", "Figure 3", "dynamic IR-drop maps for P1 (hot) and P2 (cool)");
  run.phase("table");
  scap::print_fig3();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
