// Ablation -- scan-shift switching per fill policy.
//
// The paper sets shift power aside ("lower frequencies are used during test
// pattern shift") and notes fill-adjacent exists mostly to cut shift
// switching. This bench quantifies both statements on the reproduction SOC:
// shift power is indeed small against the at-speed launch window once the
// 10 MHz shift clock is accounted for, and fill-adjacent cuts scan-cell
// toggles by a large factor over random fill.
#include "bench_common.h"

#include "atpg/shift_power.h"
#include "util/stats.h"

namespace scap {
namespace {

void print_ablation() {
  const Experiment& exp = bench::experiment();
  const Netlist& nl = exp.soc.netlist;
  const double shift_mhz = exp.soc.config.shift_mhz;

  // Reuse the conventional flow's cubes by re-filling the same care bits
  // under each policy: approximate by refilling the final patterns' care
  // bits is impossible post-fill, so generate fresh cubes per policy.
  TextTable t({"fill policy", "avg toggles/cycle", "peak cycle toggles",
               "avg shift power [mW]", "vs at-speed SCAP"});
  const auto& conv_scap = bench::conventional_scap();
  RunningStats scap_stats;
  for (const auto& rep : conv_scap) {
    scap_stats.add(rep.scap_mw(Rail::kVdd) + rep.scap_mw(Rail::kVss));
  }

  for (FillMode mode : {FillMode::kRandom, FillMode::kFill0,
                        FillMode::kAdjacent, FillMode::kQuiet}) {
    AtpgOptions opt = bench::bench_atpg_options();
    opt.fill = mode;
    AtpgEngine engine(nl, exp.ctx);
    // A trimmed fault sample keeps this per-policy ATPG quick.
    std::vector<TdfFault> sample;
    for (std::size_t i = 0; i < exp.faults.size(); i += 8) {
      sample.push_back(exp.faults[i]);
    }
    const AtpgResult res = engine.run(sample, opt);

    RunningStats toggles, peak, power;
    std::vector<std::uint8_t> prev;  // previous response shifts out
    for (std::size_t i = 0; i < res.patterns.size() && i < 64; ++i) {
      const auto rep = analyze_shift_power(nl, exp.soc.scan,
                                           exp.soc.parasitics, *exp.lib,
                                           res.patterns.patterns[i], prev);
      toggles.add(rep.avg_toggles_per_cycle);
      peak.add(static_cast<double>(rep.peak_cycle_toggles));
      power.add(rep.avg_power_mw(shift_mhz));
      prev = res.patterns.patterns[i].s1;
      prev.resize(nl.num_flops());
    }
    t.add_row({fill_mode_name(mode), TextTable::num(toggles.mean(), 1),
               TextTable::num(peak.max(), 0),
               TextTable::num(power.mean(), 2),
               TextTable::num(100.0 * power.mean() /
                                  std::max(1e-9, scap_stats.mean()),
                              1) +
                   "%"});
  }
  std::printf(
      "%s\n",
      t.render("Ablation: shift switching per fill policy (shift clock " +
               TextTable::num(shift_mhz, 0) + " MHz)")
          .c_str());
  std::printf("Expected shape: fill-adjacent minimizes shift toggles (its "
              "purpose per the paper);\nat the slow shift clock, average "
              "shift power stays far below at-speed SCAP, which is\nwhy the "
              "paper ignores shift IR-drop.\n\n");
}

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("ablation_shift", "Ablation", "scan-shift power per fill policy");
  run.phase("table");
  scap::print_ablation();
  (void)argc;
  (void)argv;
  return 0;
}
