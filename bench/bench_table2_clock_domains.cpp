// Table 2 -- Clock-domain analysis.
//
// Paper: six domains; clka is the dominant one (~18K of ~23K scan flops at
// 100 MHz, spanning B1..B6), side domains cover single blocks. Transition
// patterns are generated per clock domain, so the dominant domain drives the
// whole methodology.
#include "bench_common.h"

namespace scap {
namespace {

void print_table2() {
  const Experiment& exp = bench::experiment();
  const Netlist& nl = exp.soc.netlist;
  const auto by_domain = nl.flops_by_domain();

  TextTable t({"domain", "#scan cells", "freq [MHz]", "blocks covered",
               "share"});
  for (DomainId d = 0; d < nl.domain_count(); ++d) {
    std::vector<bool> covered(nl.block_count(), false);
    for (FlopId f : by_domain[d]) covered[nl.flop(f).block] = true;
    std::string blocks;
    for (std::size_t b = 0; b < covered.size(); ++b) {
      if (covered[b]) {
        if (!blocks.empty()) blocks += ",";
        blocks += "B" + std::to_string(b + 1);
      }
    }
    t.add_row({std::string("clk") + static_cast<char>('a' + d),
               std::to_string(by_domain[d].size()),
               TextTable::num(exp.soc.config.domain_freq_mhz[d], 0), blocks,
               TextTable::num(100.0 * static_cast<double>(by_domain[d].size()) /
                                  static_cast<double>(nl.num_flops()),
                              1) +
                   "%"});
  }
  std::printf("%s\n", t.render("Table 2: clock domain analysis").c_str());
  std::printf("Paper shape: clka dominant (~78%% of flops, 100 MHz, B1-B6);\n"
              "side domains clkb..clkf cover one block each (B1, B3, B6, B6, "
              "B2).\n\n");
}

void BM_BuildSoc(benchmark::State& state) {
  for (auto _ : state) {
    SocConfig cfg = SocConfig::turbo_eagle_scaled(0.01);
    SocDesign soc = build_soc(cfg);
    benchmark::DoNotOptimize(soc.netlist.num_gates());
  }
}
BENCHMARK(BM_BuildSoc)->Unit(benchmark::kMillisecond);

void BM_ScanStitch(benchmark::State& state) {
  const Experiment& exp = bench::experiment();
  for (auto _ : state) {
    auto sc = ScanChains::build(exp.soc.netlist, exp.soc.placement,
                                exp.soc.config.scan_chains);
    benchmark::DoNotOptimize(sc.max_chain_length());
  }
}
BENCHMARK(BM_ScanStitch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scap

int main(int argc, char** argv) {
  scap::bench::BenchRun run("table2_clock_domains", "Table 2", "clock domain analysis");
  run.phase("table");
  scap::print_table2();
  run.phase("microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
