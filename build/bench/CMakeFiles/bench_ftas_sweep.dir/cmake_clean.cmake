file(REMOVE_RECURSE
  "CMakeFiles/bench_ftas_sweep.dir/bench_ftas_sweep.cpp.o"
  "CMakeFiles/bench_ftas_sweep.dir/bench_ftas_sweep.cpp.o.d"
  "bench_ftas_sweep"
  "bench_ftas_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ftas_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
