# Empty compiler generated dependencies file for bench_ftas_sweep.
# This may be replaced when dependencies are built.
