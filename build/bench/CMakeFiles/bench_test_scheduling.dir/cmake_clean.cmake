file(REMOVE_RECURSE
  "CMakeFiles/bench_test_scheduling.dir/bench_test_scheduling.cpp.o"
  "CMakeFiles/bench_test_scheduling.dir/bench_test_scheduling.cpp.o.d"
  "bench_test_scheduling"
  "bench_test_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
