# Empty dependencies file for bench_table4_cap_vs_scap.
# This may be replaced when dependencies are built.
