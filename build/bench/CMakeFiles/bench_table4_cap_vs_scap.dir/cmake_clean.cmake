file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cap_vs_scap.dir/bench_table4_cap_vs_scap.cpp.o"
  "CMakeFiles/bench_table4_cap_vs_scap.dir/bench_table4_cap_vs_scap.cpp.o.d"
  "bench_table4_cap_vs_scap"
  "bench_table4_cap_vs_scap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cap_vs_scap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
