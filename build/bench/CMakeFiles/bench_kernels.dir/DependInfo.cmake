
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_kernels.cpp" "bench/CMakeFiles/bench_kernels.dir/bench_kernels.cpp.o" "gcc" "bench/CMakeFiles/bench_kernels.dir/bench_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/scap_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/scap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/scap_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/scap_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/scap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
