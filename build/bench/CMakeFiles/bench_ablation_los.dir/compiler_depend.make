# Empty compiler generated dependencies file for bench_ablation_los.
# This may be replaced when dependencies are built.
