file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_los.dir/bench_ablation_los.cpp.o"
  "CMakeFiles/bench_ablation_los.dir/bench_ablation_los.cpp.o.d"
  "bench_ablation_los"
  "bench_ablation_los.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_los.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
