# Empty compiler generated dependencies file for bench_fig7_endpoint_delays.
# This may be replaced when dependencies are built.
