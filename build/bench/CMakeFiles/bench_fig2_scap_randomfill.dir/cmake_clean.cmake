file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_scap_randomfill.dir/bench_fig2_scap_randomfill.cpp.o"
  "CMakeFiles/bench_fig2_scap_randomfill.dir/bench_fig2_scap_randomfill.cpp.o.d"
  "bench_fig2_scap_randomfill"
  "bench_fig2_scap_randomfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_scap_randomfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
