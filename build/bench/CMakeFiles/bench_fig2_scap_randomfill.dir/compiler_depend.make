# Empty compiler generated dependencies file for bench_fig2_scap_randomfill.
# This may be replaced when dependencies are built.
