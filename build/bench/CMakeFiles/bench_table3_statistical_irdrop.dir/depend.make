# Empty dependencies file for bench_table3_statistical_irdrop.
# This may be replaced when dependencies are built.
