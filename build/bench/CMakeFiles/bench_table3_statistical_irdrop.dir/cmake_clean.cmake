file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_statistical_irdrop.dir/bench_table3_statistical_irdrop.cpp.o"
  "CMakeFiles/bench_table3_statistical_irdrop.dir/bench_table3_statistical_irdrop.cpp.o.d"
  "bench_table3_statistical_irdrop"
  "bench_table3_statistical_irdrop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_statistical_irdrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
