# Empty dependencies file for bench_repair_flow.
# This may be replaced when dependencies are built.
