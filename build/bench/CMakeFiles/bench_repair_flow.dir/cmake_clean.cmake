file(REMOVE_RECURSE
  "CMakeFiles/bench_repair_flow.dir/bench_repair_flow.cpp.o"
  "CMakeFiles/bench_repair_flow.dir/bench_repair_flow.cpp.o.d"
  "bench_repair_flow"
  "bench_repair_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
