# Empty dependencies file for bench_ablation_shift.
# This may be replaced when dependencies are built.
