file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shift.dir/bench_ablation_shift.cpp.o"
  "CMakeFiles/bench_ablation_shift.dir/bench_ablation_shift.cpp.o.d"
  "bench_ablation_shift"
  "bench_ablation_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
