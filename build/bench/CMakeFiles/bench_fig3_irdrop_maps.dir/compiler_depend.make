# Empty compiler generated dependencies file for bench_fig3_irdrop_maps.
# This may be replaced when dependencies are built.
