# Empty compiler generated dependencies file for bench_fig6_scap_poweraware.
# This may be replaced when dependencies are built.
