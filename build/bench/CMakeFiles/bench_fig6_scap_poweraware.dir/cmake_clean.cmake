file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_scap_poweraware.dir/bench_fig6_scap_poweraware.cpp.o"
  "CMakeFiles/bench_fig6_scap_poweraware.dir/bench_fig6_scap_poweraware.cpp.o.d"
  "bench_fig6_scap_poweraware"
  "bench_fig6_scap_poweraware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_scap_poweraware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
