file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_clock_domains.dir/bench_table2_clock_domains.cpp.o"
  "CMakeFiles/bench_table2_clock_domains.dir/bench_table2_clock_domains.cpp.o.d"
  "bench_table2_clock_domains"
  "bench_table2_clock_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_clock_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
