# Empty compiler generated dependencies file for bench_table2_clock_domains.
# This may be replaced when dependencies are built.
