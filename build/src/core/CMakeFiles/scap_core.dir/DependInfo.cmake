
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/scap_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/scap_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/pattern_sim.cpp" "src/core/CMakeFiles/scap_core.dir/pattern_sim.cpp.o" "gcc" "src/core/CMakeFiles/scap_core.dir/pattern_sim.cpp.o.d"
  "/root/repo/src/core/power_aware.cpp" "src/core/CMakeFiles/scap_core.dir/power_aware.cpp.o" "gcc" "src/core/CMakeFiles/scap_core.dir/power_aware.cpp.o.d"
  "/root/repo/src/core/test_schedule.cpp" "src/core/CMakeFiles/scap_core.dir/test_schedule.cpp.o" "gcc" "src/core/CMakeFiles/scap_core.dir/test_schedule.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/scap_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/scap_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atpg/CMakeFiles/scap_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/scap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/scap_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/scap_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/scap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
