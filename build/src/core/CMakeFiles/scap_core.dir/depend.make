# Empty dependencies file for scap_core.
# This may be replaced when dependencies are built.
