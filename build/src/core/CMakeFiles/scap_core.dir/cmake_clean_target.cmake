file(REMOVE_RECURSE
  "libscap_core.a"
)
