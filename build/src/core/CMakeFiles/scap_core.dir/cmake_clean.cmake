file(REMOVE_RECURSE
  "CMakeFiles/scap_core.dir/experiment.cpp.o"
  "CMakeFiles/scap_core.dir/experiment.cpp.o.d"
  "CMakeFiles/scap_core.dir/pattern_sim.cpp.o"
  "CMakeFiles/scap_core.dir/pattern_sim.cpp.o.d"
  "CMakeFiles/scap_core.dir/power_aware.cpp.o"
  "CMakeFiles/scap_core.dir/power_aware.cpp.o.d"
  "CMakeFiles/scap_core.dir/test_schedule.cpp.o"
  "CMakeFiles/scap_core.dir/test_schedule.cpp.o.d"
  "CMakeFiles/scap_core.dir/validation.cpp.o"
  "CMakeFiles/scap_core.dir/validation.cpp.o.d"
  "libscap_core.a"
  "libscap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
