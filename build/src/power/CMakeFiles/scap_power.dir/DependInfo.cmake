
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/activity.cpp" "src/power/CMakeFiles/scap_power.dir/activity.cpp.o" "gcc" "src/power/CMakeFiles/scap_power.dir/activity.cpp.o.d"
  "/root/repo/src/power/dynamic_ir.cpp" "src/power/CMakeFiles/scap_power.dir/dynamic_ir.cpp.o" "gcc" "src/power/CMakeFiles/scap_power.dir/dynamic_ir.cpp.o.d"
  "/root/repo/src/power/power_grid.cpp" "src/power/CMakeFiles/scap_power.dir/power_grid.cpp.o" "gcc" "src/power/CMakeFiles/scap_power.dir/power_grid.cpp.o.d"
  "/root/repo/src/power/statistical.cpp" "src/power/CMakeFiles/scap_power.dir/statistical.cpp.o" "gcc" "src/power/CMakeFiles/scap_power.dir/statistical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/scap_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
