file(REMOVE_RECURSE
  "CMakeFiles/scap_power.dir/activity.cpp.o"
  "CMakeFiles/scap_power.dir/activity.cpp.o.d"
  "CMakeFiles/scap_power.dir/dynamic_ir.cpp.o"
  "CMakeFiles/scap_power.dir/dynamic_ir.cpp.o.d"
  "CMakeFiles/scap_power.dir/power_grid.cpp.o"
  "CMakeFiles/scap_power.dir/power_grid.cpp.o.d"
  "CMakeFiles/scap_power.dir/statistical.cpp.o"
  "CMakeFiles/scap_power.dir/statistical.cpp.o.d"
  "libscap_power.a"
  "libscap_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
