# Empty compiler generated dependencies file for scap_power.
# This may be replaced when dependencies are built.
