file(REMOVE_RECURSE
  "libscap_power.a"
)
