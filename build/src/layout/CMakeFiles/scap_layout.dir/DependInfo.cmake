
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/clock_tree.cpp" "src/layout/CMakeFiles/scap_layout.dir/clock_tree.cpp.o" "gcc" "src/layout/CMakeFiles/scap_layout.dir/clock_tree.cpp.o.d"
  "/root/repo/src/layout/floorplan.cpp" "src/layout/CMakeFiles/scap_layout.dir/floorplan.cpp.o" "gcc" "src/layout/CMakeFiles/scap_layout.dir/floorplan.cpp.o.d"
  "/root/repo/src/layout/parasitics.cpp" "src/layout/CMakeFiles/scap_layout.dir/parasitics.cpp.o" "gcc" "src/layout/CMakeFiles/scap_layout.dir/parasitics.cpp.o.d"
  "/root/repo/src/layout/placement.cpp" "src/layout/CMakeFiles/scap_layout.dir/placement.cpp.o" "gcc" "src/layout/CMakeFiles/scap_layout.dir/placement.cpp.o.d"
  "/root/repo/src/layout/spef.cpp" "src/layout/CMakeFiles/scap_layout.dir/spef.cpp.o" "gcc" "src/layout/CMakeFiles/scap_layout.dir/spef.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
