file(REMOVE_RECURSE
  "libscap_layout.a"
)
