# Empty compiler generated dependencies file for scap_layout.
# This may be replaced when dependencies are built.
