file(REMOVE_RECURSE
  "CMakeFiles/scap_layout.dir/clock_tree.cpp.o"
  "CMakeFiles/scap_layout.dir/clock_tree.cpp.o.d"
  "CMakeFiles/scap_layout.dir/floorplan.cpp.o"
  "CMakeFiles/scap_layout.dir/floorplan.cpp.o.d"
  "CMakeFiles/scap_layout.dir/parasitics.cpp.o"
  "CMakeFiles/scap_layout.dir/parasitics.cpp.o.d"
  "CMakeFiles/scap_layout.dir/placement.cpp.o"
  "CMakeFiles/scap_layout.dir/placement.cpp.o.d"
  "CMakeFiles/scap_layout.dir/spef.cpp.o"
  "CMakeFiles/scap_layout.dir/spef.cpp.o.d"
  "libscap_layout.a"
  "libscap_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
