file(REMOVE_RECURSE
  "libscap_soc.a"
)
