file(REMOVE_RECURSE
  "CMakeFiles/scap_soc.dir/generator.cpp.o"
  "CMakeFiles/scap_soc.dir/generator.cpp.o.d"
  "CMakeFiles/scap_soc.dir/scan_chains.cpp.o"
  "CMakeFiles/scap_soc.dir/scan_chains.cpp.o.d"
  "CMakeFiles/scap_soc.dir/soc_config.cpp.o"
  "CMakeFiles/scap_soc.dir/soc_config.cpp.o.d"
  "libscap_soc.a"
  "libscap_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
