# Empty dependencies file for scap_soc.
# This may be replaced when dependencies are built.
