
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/generator.cpp" "src/soc/CMakeFiles/scap_soc.dir/generator.cpp.o" "gcc" "src/soc/CMakeFiles/scap_soc.dir/generator.cpp.o.d"
  "/root/repo/src/soc/scan_chains.cpp" "src/soc/CMakeFiles/scap_soc.dir/scan_chains.cpp.o" "gcc" "src/soc/CMakeFiles/scap_soc.dir/scan_chains.cpp.o.d"
  "/root/repo/src/soc/soc_config.cpp" "src/soc/CMakeFiles/scap_soc.dir/soc_config.cpp.o" "gcc" "src/soc/CMakeFiles/scap_soc.dir/soc_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/scap_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
