file(REMOVE_RECURSE
  "CMakeFiles/scap_sim.dir/event_sim.cpp.o"
  "CMakeFiles/scap_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/scap_sim.dir/logic_sim.cpp.o"
  "CMakeFiles/scap_sim.dir/logic_sim.cpp.o.d"
  "CMakeFiles/scap_sim.dir/scap.cpp.o"
  "CMakeFiles/scap_sim.dir/scap.cpp.o.d"
  "CMakeFiles/scap_sim.dir/sdf.cpp.o"
  "CMakeFiles/scap_sim.dir/sdf.cpp.o.d"
  "CMakeFiles/scap_sim.dir/sta.cpp.o"
  "CMakeFiles/scap_sim.dir/sta.cpp.o.d"
  "CMakeFiles/scap_sim.dir/vcd.cpp.o"
  "CMakeFiles/scap_sim.dir/vcd.cpp.o.d"
  "libscap_sim.a"
  "libscap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
