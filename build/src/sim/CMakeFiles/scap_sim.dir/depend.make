# Empty dependencies file for scap_sim.
# This may be replaced when dependencies are built.
