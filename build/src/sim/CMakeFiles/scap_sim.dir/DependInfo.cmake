
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_sim.cpp" "src/sim/CMakeFiles/scap_sim.dir/event_sim.cpp.o" "gcc" "src/sim/CMakeFiles/scap_sim.dir/event_sim.cpp.o.d"
  "/root/repo/src/sim/logic_sim.cpp" "src/sim/CMakeFiles/scap_sim.dir/logic_sim.cpp.o" "gcc" "src/sim/CMakeFiles/scap_sim.dir/logic_sim.cpp.o.d"
  "/root/repo/src/sim/scap.cpp" "src/sim/CMakeFiles/scap_sim.dir/scap.cpp.o" "gcc" "src/sim/CMakeFiles/scap_sim.dir/scap.cpp.o.d"
  "/root/repo/src/sim/sdf.cpp" "src/sim/CMakeFiles/scap_sim.dir/sdf.cpp.o" "gcc" "src/sim/CMakeFiles/scap_sim.dir/sdf.cpp.o.d"
  "/root/repo/src/sim/sta.cpp" "src/sim/CMakeFiles/scap_sim.dir/sta.cpp.o" "gcc" "src/sim/CMakeFiles/scap_sim.dir/sta.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/scap_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/scap_sim.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/scap_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
