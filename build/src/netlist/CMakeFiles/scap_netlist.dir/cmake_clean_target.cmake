file(REMOVE_RECURSE
  "libscap_netlist.a"
)
