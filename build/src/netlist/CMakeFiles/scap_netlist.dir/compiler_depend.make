# Empty compiler generated dependencies file for scap_netlist.
# This may be replaced when dependencies are built.
