file(REMOVE_RECURSE
  "CMakeFiles/scap_netlist.dir/cell_type.cpp.o"
  "CMakeFiles/scap_netlist.dir/cell_type.cpp.o.d"
  "CMakeFiles/scap_netlist.dir/design_stats.cpp.o"
  "CMakeFiles/scap_netlist.dir/design_stats.cpp.o.d"
  "CMakeFiles/scap_netlist.dir/netlist.cpp.o"
  "CMakeFiles/scap_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/scap_netlist.dir/tech_library.cpp.o"
  "CMakeFiles/scap_netlist.dir/tech_library.cpp.o.d"
  "CMakeFiles/scap_netlist.dir/verilog.cpp.o"
  "CMakeFiles/scap_netlist.dir/verilog.cpp.o.d"
  "libscap_netlist.a"
  "libscap_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
