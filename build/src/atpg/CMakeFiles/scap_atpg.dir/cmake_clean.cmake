file(REMOVE_RECURSE
  "CMakeFiles/scap_atpg.dir/engine.cpp.o"
  "CMakeFiles/scap_atpg.dir/engine.cpp.o.d"
  "CMakeFiles/scap_atpg.dir/fault.cpp.o"
  "CMakeFiles/scap_atpg.dir/fault.cpp.o.d"
  "CMakeFiles/scap_atpg.dir/fault_sim.cpp.o"
  "CMakeFiles/scap_atpg.dir/fault_sim.cpp.o.d"
  "CMakeFiles/scap_atpg.dir/pattern.cpp.o"
  "CMakeFiles/scap_atpg.dir/pattern.cpp.o.d"
  "CMakeFiles/scap_atpg.dir/pattern_io.cpp.o"
  "CMakeFiles/scap_atpg.dir/pattern_io.cpp.o.d"
  "CMakeFiles/scap_atpg.dir/podem.cpp.o"
  "CMakeFiles/scap_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/scap_atpg.dir/quiet_state.cpp.o"
  "CMakeFiles/scap_atpg.dir/quiet_state.cpp.o.d"
  "CMakeFiles/scap_atpg.dir/shift_power.cpp.o"
  "CMakeFiles/scap_atpg.dir/shift_power.cpp.o.d"
  "libscap_atpg.a"
  "libscap_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
