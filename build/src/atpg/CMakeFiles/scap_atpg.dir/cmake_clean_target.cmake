file(REMOVE_RECURSE
  "libscap_atpg.a"
)
