
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/engine.cpp" "src/atpg/CMakeFiles/scap_atpg.dir/engine.cpp.o" "gcc" "src/atpg/CMakeFiles/scap_atpg.dir/engine.cpp.o.d"
  "/root/repo/src/atpg/fault.cpp" "src/atpg/CMakeFiles/scap_atpg.dir/fault.cpp.o" "gcc" "src/atpg/CMakeFiles/scap_atpg.dir/fault.cpp.o.d"
  "/root/repo/src/atpg/fault_sim.cpp" "src/atpg/CMakeFiles/scap_atpg.dir/fault_sim.cpp.o" "gcc" "src/atpg/CMakeFiles/scap_atpg.dir/fault_sim.cpp.o.d"
  "/root/repo/src/atpg/pattern.cpp" "src/atpg/CMakeFiles/scap_atpg.dir/pattern.cpp.o" "gcc" "src/atpg/CMakeFiles/scap_atpg.dir/pattern.cpp.o.d"
  "/root/repo/src/atpg/pattern_io.cpp" "src/atpg/CMakeFiles/scap_atpg.dir/pattern_io.cpp.o" "gcc" "src/atpg/CMakeFiles/scap_atpg.dir/pattern_io.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/atpg/CMakeFiles/scap_atpg.dir/podem.cpp.o" "gcc" "src/atpg/CMakeFiles/scap_atpg.dir/podem.cpp.o.d"
  "/root/repo/src/atpg/quiet_state.cpp" "src/atpg/CMakeFiles/scap_atpg.dir/quiet_state.cpp.o" "gcc" "src/atpg/CMakeFiles/scap_atpg.dir/quiet_state.cpp.o.d"
  "/root/repo/src/atpg/shift_power.cpp" "src/atpg/CMakeFiles/scap_atpg.dir/shift_power.cpp.o" "gcc" "src/atpg/CMakeFiles/scap_atpg.dir/shift_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/scap_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/scap_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
