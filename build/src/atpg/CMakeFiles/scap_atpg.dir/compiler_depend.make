# Empty compiler generated dependencies file for scap_atpg.
# This may be replaced when dependencies are built.
