file(REMOVE_RECURSE
  "libscap_util.a"
)
