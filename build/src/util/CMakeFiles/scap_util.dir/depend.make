# Empty dependencies file for scap_util.
# This may be replaced when dependencies are built.
