file(REMOVE_RECURSE
  "CMakeFiles/scap_util.dir/table.cpp.o"
  "CMakeFiles/scap_util.dir/table.cpp.o.d"
  "libscap_util.a"
  "libscap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
