file(REMOVE_RECURSE
  "CMakeFiles/scap_test.dir/scap_test.cpp.o"
  "CMakeFiles/scap_test.dir/scap_test.cpp.o.d"
  "scap_test"
  "scap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
