# Empty compiler generated dependencies file for scap_test.
# This may be replaced when dependencies are built.
