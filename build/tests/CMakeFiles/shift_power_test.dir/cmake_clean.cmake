file(REMOVE_RECURSE
  "CMakeFiles/shift_power_test.dir/shift_power_test.cpp.o"
  "CMakeFiles/shift_power_test.dir/shift_power_test.cpp.o.d"
  "shift_power_test"
  "shift_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
