# Empty compiler generated dependencies file for shift_power_test.
# This may be replaced when dependencies are built.
