file(REMOVE_RECURSE
  "CMakeFiles/dynamic_ir_test.dir/dynamic_ir_test.cpp.o"
  "CMakeFiles/dynamic_ir_test.dir/dynamic_ir_test.cpp.o.d"
  "dynamic_ir_test"
  "dynamic_ir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
