# Empty dependencies file for dynamic_ir_test.
# This may be replaced when dependencies are built.
