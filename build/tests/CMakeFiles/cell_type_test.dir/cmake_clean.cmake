file(REMOVE_RECURSE
  "CMakeFiles/cell_type_test.dir/cell_type_test.cpp.o"
  "CMakeFiles/cell_type_test.dir/cell_type_test.cpp.o.d"
  "cell_type_test"
  "cell_type_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
