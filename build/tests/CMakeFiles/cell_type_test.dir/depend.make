# Empty dependencies file for cell_type_test.
# This may be replaced when dependencies are built.
