# Empty dependencies file for los_test.
# This may be replaced when dependencies are built.
