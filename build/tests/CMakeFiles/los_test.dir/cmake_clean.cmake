file(REMOVE_RECURSE
  "CMakeFiles/los_test.dir/los_test.cpp.o"
  "CMakeFiles/los_test.dir/los_test.cpp.o.d"
  "los_test"
  "los_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/los_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
