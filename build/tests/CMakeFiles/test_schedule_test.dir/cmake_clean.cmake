file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_test.dir/test_schedule_test.cpp.o"
  "CMakeFiles/test_schedule_test.dir/test_schedule_test.cpp.o.d"
  "test_schedule_test"
  "test_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
