# Empty dependencies file for test_schedule_test.
# This may be replaced when dependencies are built.
