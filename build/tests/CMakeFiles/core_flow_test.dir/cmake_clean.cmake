file(REMOVE_RECURSE
  "CMakeFiles/core_flow_test.dir/core_flow_test.cpp.o"
  "CMakeFiles/core_flow_test.dir/core_flow_test.cpp.o.d"
  "core_flow_test"
  "core_flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
