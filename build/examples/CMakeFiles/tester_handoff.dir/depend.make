# Empty dependencies file for tester_handoff.
# This may be replaced when dependencies are built.
