file(REMOVE_RECURSE
  "CMakeFiles/tester_handoff.dir/tester_handoff.cpp.o"
  "CMakeFiles/tester_handoff.dir/tester_handoff.cpp.o.d"
  "tester_handoff"
  "tester_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tester_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
