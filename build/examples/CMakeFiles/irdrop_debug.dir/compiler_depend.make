# Empty compiler generated dependencies file for irdrop_debug.
# This may be replaced when dependencies are built.
