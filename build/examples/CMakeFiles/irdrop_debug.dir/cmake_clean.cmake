file(REMOVE_RECURSE
  "CMakeFiles/irdrop_debug.dir/irdrop_debug.cpp.o"
  "CMakeFiles/irdrop_debug.dir/irdrop_debug.cpp.o.d"
  "irdrop_debug"
  "irdrop_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdrop_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
