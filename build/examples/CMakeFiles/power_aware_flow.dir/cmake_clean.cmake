file(REMOVE_RECURSE
  "CMakeFiles/power_aware_flow.dir/power_aware_flow.cpp.o"
  "CMakeFiles/power_aware_flow.dir/power_aware_flow.cpp.o.d"
  "power_aware_flow"
  "power_aware_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_aware_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
