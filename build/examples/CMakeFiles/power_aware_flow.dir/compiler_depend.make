# Empty compiler generated dependencies file for power_aware_flow.
# This may be replaced when dependencies are built.
