// scap_prof: scheduler-profiler driver for the work-stealing runtime.
//
// Runs one rt-parallelized kernel (the same bodies the bench_kernels
// thread-scaling sweep times) with the profiler forced on, prints the
// per-lane pool report (obs/prof.h), and writes the rt.prof.* metrics as a
// JSON artifact. With --overhead it instead times the kernel with the
// profiler off vs on and reports the relative cost, which is the number the
// "<2% prof-off overhead" acceptance check quotes.
//
// Usage:
//   scap_prof [--kernel faultsim|grid|scap] [--threads N] [--repeat N]
//             [--scale S] [--words 1|2|4] [--out DIR] [--overhead]
//
// Artifacts (scap_prof_metrics.json, and scap_prof_trace.json when
// SCAP_TRACE is on) land next to the executable by default, or under --out
// DIR -- never the current working directory (same policy as
// examples/irdrop_debug).
//
// Exit codes: 0 = ok, 2 = usage error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "atpg/fault_sim.h"
#include "atpg/pattern.h"
#include "core/experiment.h"
#include "core/validation.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "power/dynamic_ir.h"
#include "rt/parallel.h"
#include "sim/logic_sim.h"
#include "util/version.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--kernel faultsim|grid|scap] [--threads N]\n"
               "       [--repeat N] [--scale S] [--words 1|2|4] [--out DIR]\n"
               "       [--overhead]\n",
               argv0);
  return 2;
}

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel = "faultsim";
  std::size_t threads = 4;
  int repeat = 3;
  double scale = 0.04;
  std::size_t words = 0;  // 0 = FaultSimulator default
  std::string out_dir;
  bool overhead = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--kernel") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      kernel = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      threads = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--repeat") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      repeat = std::atoi(v);
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scale = std::atof(v);
    } else if (arg == "--words") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      words = static_cast<std::size_t>(std::atol(v));
      if (!scap::valid_batch_words(words)) return usage(argv[0]);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      out_dir = v;
    } else if (arg == "--overhead") {
      overhead = true;
    } else if (arg == "--version") {
      std::printf("scap_prof %s\n", scap::kVersion);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (threads == 0 || repeat <= 0 || scale <= 0.0) return usage(argv[0]);

  const std::filesystem::path out_base =
      out_dir.empty() ? std::filesystem::path(argv[0]).parent_path()
                      : std::filesystem::path(out_dir);

  std::printf("scap_prof: kernel=%s threads=%zu repeat=%d scale=%.3f\n",
              kernel.c_str(), threads, repeat, scale);
  const scap::Experiment exp = scap::Experiment::standard(scale, 2007);
  const scap::Netlist& nl = exp.soc.netlist;
  const scap::PatternSet pats =
      scap::random_pattern_set(192, exp.ctx.num_vars(), 2007);

  std::function<void()> body;
  if (kernel == "faultsim") {
    // Share the levelized view across repeats (profiling the grade, not the
    // one-time schedule build); `--words` picks the batch width.
    auto view = scap::LevelizedView::build(nl);
    body = [&exp, &pats, view, words] {
      scap::FaultSimulator fsim(exp.soc.netlist, exp.ctx, view, words);
      volatile std::size_t n = fsim.grade(pats.patterns, exp.faults).size();
      (void)n;
    };
  } else if (kernel == "grid") {
    scap::PowerGridOptions gopt;
    gopt.nx = 128;
    gopt.ny = 128;
    auto grid = std::make_shared<scap::PowerGrid>(exp.soc.floorplan, gopt);
    auto where = std::make_shared<std::vector<scap::Point>>();
    auto amps = std::make_shared<std::vector<double>>();
    for (scap::GateId g = 0; g < nl.num_gates(); ++g) {
      where->push_back(exp.soc.placement.gate_pos(g));
      amps->push_back(2e-6 * static_cast<double>(1 + g % 5));
    }
    body = [grid, where, amps] {
      volatile int it = grid->solve(*where, *amps, /*vdd_rail=*/true).iterations;
      (void)it;
    };
  } else if (kernel == "scap") {
    body = [&] {
      const std::span<const scap::Pattern> sp =
          std::span<const scap::Pattern>(pats.patterns)
              .first(std::min<std::size_t>(24, pats.size()));
      volatile std::size_t n =
          scap::scap_profile_patterns(exp.soc, *exp.lib, exp.ctx, sp).size();
      (void)n;
    };
  } else {
    return usage(argv[0]);
  }

  scap::rt::ThreadPool::set_global_concurrency(threads);
  body();  // warm-up: caches, lazy pools, page-in

  scap::obs::ObsConfig cfg = scap::obs::config();

  if (overhead) {
    cfg.prof = false;
    scap::obs::configure(cfg);
    double off_ms = 0.0;
    for (int r = 0; r < repeat; ++r) off_ms += wall_ms(body);
    cfg.prof = true;
    scap::obs::configure(cfg);
    scap::obs::prof_reset();
    double on_ms = 0.0;
    for (int r = 0; r < repeat; ++r) on_ms += wall_ms(body);
    const scap::obs::PoolProfile prof = scap::obs::collect_pool_profile();
    const double pct =
        off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
    std::printf(
        "profiler overhead: off %.2f ms, on %.2f ms (%+.2f%%), "
        "%llu events recorded\n",
        off_ms / repeat, on_ms / repeat, pct,
        static_cast<unsigned long long>(prof.total_events));
    return 0;
  }

  cfg.prof = true;
  scap::obs::configure(cfg);
  scap::obs::prof_reset();
  double total_ms = 0.0;
  for (int r = 0; r < repeat; ++r) total_ms += wall_ms(body);

  const scap::obs::PoolProfile prof = scap::obs::collect_pool_profile();
  std::printf("\n%zu run(s), %.2f ms avg wall\n%s", static_cast<std::size_t>(repeat),
              total_ms / repeat, scap::obs::format_pool_report(prof).c_str());

  scap::obs::Registry& reg = scap::obs::Registry::global();
  scap::obs::export_pool_profile(prof, reg);
  scap::obs::RunReport rep;
  rep.name = "scap_prof";
  rep.info.emplace_back("kernel", kernel);
  rep.info.emplace_back("threads", std::to_string(threads));
  rep.info.emplace_back("repeat", std::to_string(repeat));
  const std::string metrics_path =
      (out_base / "scap_prof_metrics.json").string();
  if (scap::obs::write_file(metrics_path, scap::obs::to_json(rep, reg))) {
    std::printf("metrics: wrote %s\n", metrics_path.c_str());
  } else {
    std::fprintf(stderr, "metrics: FAILED to write %s\n", metrics_path.c_str());
  }
  if (scap::obs::trace_enabled()) {
    const std::string trace_path =
        (out_base / "scap_prof_trace.json").string();
    if (scap::obs::dump_chrome_trace(trace_path)) {
      std::printf("trace: wrote %s\n", trace_path.c_str());
    }
  }
  return 0;
}
