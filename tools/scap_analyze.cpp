// scap_analyze -- dataflow-fact and static-power-profile dump.
//
// Runs the lint subsystem's dataflow engine (SCOAP controllability /
// observability, constant inference, levelization) and the static SCAP
// screening proxy over the generated SOC, and reports the facts as JSON or
// text: per-net cost distributions, untestable-net counts, and the static
// per-pattern SCAP bound profile over a random pattern sample -- including
// the screening throughput, which is what makes the two-tier cascade in
// core/validation.h pay off.
//
// Exit codes: 0 = ok, 2 = usage error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "atpg/pattern.h"
#include "core/pattern_sim.h"
#include "lint/dataflow.h"
#include "lint/static_power.h"
#include "obs/json.h"
#include "soc/generator.h"
#include "util/stats.h"
#include "util/version.h"

namespace {

using namespace scap;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --soc-scale S    analyze the generated SOC at scale S "
               "(default 0.1)\n"
               "  --seed N         SOC generator seed (default 2007)\n"
               "  --scheme NAME    loc | los | enhanced launch scheme "
               "(default loc)\n"
               "  --patterns N     random patterns for the static screen "
               "profile (default 64)\n"
               "  --format FMT     text | json (default text)\n"
               "  --output FILE    write the report to FILE (default "
               "stdout)\n",
               argv0);
  return 2;
}

/// log2-bucketed histogram of the finite SCOAP costs plus summary stats.
struct CostProfile {
  static constexpr std::size_t kBuckets = 24;  // [2^k, 2^(k+1)) cost buckets
  std::vector<std::size_t> hist = std::vector<std::size_t>(kBuckets, 0);
  std::size_t finite = 0;
  std::size_t infinite = 0;
  RunningStats stats;

  void add(std::uint32_t cost) {
    if (cost == lint::kInfCost) {
      ++infinite;
      return;
    }
    ++finite;
    stats.add(static_cast<double>(cost));
    std::size_t b = 0;
    for (std::uint32_t c = cost; c > 1 && b + 1 < kBuckets; c >>= 1) ++b;
    ++hist[b];
  }
};

void append_stats(std::string& out, const RunningStats& s) {
  out += "{\"count\":";
  obs::json::append_number(out, static_cast<double>(s.count()));
  out += ",\"mean\":";
  obs::json::append_number(out, s.count() ? s.mean() : 0.0);
  out += ",\"min\":";
  obs::json::append_number(out, s.count() ? s.min() : 0.0);
  out += ",\"max\":";
  obs::json::append_number(out, s.count() ? s.max() : 0.0);
  out += "}";
}

void append_cost_profile(std::string& out, const char* key,
                         const CostProfile& p) {
  out += "\"";
  out += key;
  out += "\":{\"finite\":";
  obs::json::append_number(out, static_cast<double>(p.finite));
  out += ",\"infinite\":";
  obs::json::append_number(out, static_cast<double>(p.infinite));
  out += ",\"stats\":";
  append_stats(out, p.stats);
  out += ",\"log2_hist\":[";
  for (std::size_t b = 0; b < CostProfile::kBuckets; ++b) {
    if (b) out += ',';
    obs::json::append_number(out, static_cast<double>(p.hist[b]));
  }
  out += "]}";
}

void print_cost_profile(std::string& out, const char* name,
                        const CostProfile& p) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "  %-4s finite %zu (mean %.1f, max %.0f), unreachable %zu\n",
                name, p.finite, p.stats.count() ? p.stats.mean() : 0.0,
                p.stats.count() ? p.stats.max() : 0.0, p.infinite);
  out += buf;
}

void print_stats_line(std::string& out, const char* name,
                      const RunningStats& s, const char* unit) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "  %-18s mean %.4g  min %.4g  max %.4g %s\n",
                name, s.count() ? s.mean() : 0.0, s.count() ? s.min() : 0.0,
                s.count() ? s.max() : 0.0, unit);
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  double soc_scale = 0.1;
  std::uint64_t seed = 2007;
  std::string scheme = "loc";
  std::size_t n_patterns = 64;
  std::string format = "text";
  std::string output_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--soc-scale") {
      soc_scale = std::atof(value());
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--scheme") {
      scheme = value();
    } else if (arg == "--patterns") {
      n_patterns = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--format") {
      format = value();
    } else if (arg == "--output") {
      output_path = value();
    } else if (arg == "--version") {
      std::printf("scap_analyze %s\n", scap::kVersion);
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "%s: bad --format '%s'\n", argv[0], format.c_str());
    return 2;
  }
  if (scheme != "loc" && scheme != "los" && scheme != "enhanced") {
    std::fprintf(stderr, "%s: bad --scheme '%s'\n", argv[0], scheme.c_str());
    return 2;
  }

  SocConfig sc = SocConfig::turbo_eagle_scaled(soc_scale);
  sc.seed = seed;
  const TechLibrary& lib = TechLibrary::generic180();
  const SocDesign soc = build_soc(sc, lib);
  const Netlist& nl = soc.netlist;

  TestContext ctx;
  if (scheme == "los") {
    ctx = TestContext::for_domain_los(nl, 0, soc.scan.chains);
  } else if (scheme == "enhanced") {
    ctx = TestContext::for_domain_enhanced(nl, 0);
  } else {
    ctx = TestContext::for_domain(nl, 0);
  }

  // -- dataflow facts --------------------------------------------------------
  lint::DataflowOptions opt;
  opt.pi_values = ctx.pi_values;
  const lint::DataflowFacts facts = lint::analyze_dataflow(nl, opt);
  CostProfile cc0, cc1, co;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    cc0.add(facts.cc0[n]);
    cc1.add(facts.cc1[n]);
    co.add(facts.co[n]);
  }

  // -- static screen profile over a random pattern sample --------------------
  const PatternSet pats = random_pattern_set(n_patterns, ctx.num_vars(), seed);
  PatternAnalyzer analyzer(soc, lib);
  const lint::StaticScapModel& model = analyzer.static_model();  // warm build
  RunningStats toggle_bound, stw_lb, scap_total, certain, possible;
  std::size_t unbounded = 0;  // no certain launch: SCAP bound is +inf
  const auto t0 = std::chrono::steady_clock::now();
  for (const Pattern& p : pats.patterns) {
    const lint::StaticScapBound& b = analyzer.screen_static(ctx, p);
    toggle_bound.add(b.toggle_bound);
    certain.add(static_cast<double>(b.certain_launches));
    possible.add(static_cast<double>(b.possible_launches));
    if (b.stw_lb_ns > 0.0) {
      stw_lb.add(b.stw_lb_ns);
      scap_total.add(b.total_scap_mw());
    } else if (b.total_energy_pj() > 0.0) {
      ++unbounded;
    }
  }
  const double screen_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double pps =
      screen_s > 0.0 ? static_cast<double>(pats.size()) / screen_s : 0.0;

  // Worst case over an all-X cube: every scan cell unfilled.
  TestCube allx;
  allx.s1.assign(ctx.num_vars(), kBitX);
  const lint::StaticScapBound worst =
      model.screen_cube(ctx, allx, FillMode::kRandom);

  std::string out;
  if (format == "json") {
    out += "{\"tool\":\"scap_analyze\",\"design\":{\"scale\":";
    obs::json::append_number(out, soc_scale);
    out += ",\"seed\":";
    obs::json::append_number(out, static_cast<double>(seed));
    out += ",\"nets\":";
    obs::json::append_number(out, static_cast<double>(nl.num_nets()));
    out += ",\"gates\":";
    obs::json::append_number(out, static_cast<double>(nl.num_gates()));
    out += ",\"flops\":";
    obs::json::append_number(out, static_cast<double>(nl.num_flops()));
    out += ",\"blocks\":";
    obs::json::append_number(out, static_cast<double>(nl.block_count()));
    out += ",\"max_level\":";
    obs::json::append_number(out,
                             static_cast<double>(facts.levels.max_level));
    out += ",\"cyclic_gates\":";
    obs::json::append_number(out,
                             static_cast<double>(facts.levels.cyclic_gates));
    out += "},\"dataflow\":{\"constant_nets\":";
    obs::json::append_number(out, static_cast<double>(facts.constant_nets));
    out += ",\"uncontrollable_nets\":";
    obs::json::append_number(out,
                             static_cast<double>(facts.uncontrollable_nets));
    out += ",\"unobservable_nets\":";
    obs::json::append_number(out,
                             static_cast<double>(facts.unobservable_nets));
    out += ",";
    append_cost_profile(out, "cc0", cc0);
    out += ",";
    append_cost_profile(out, "cc1", cc1);
    out += ",";
    append_cost_profile(out, "co", co);
    out += "},\"static_screen\":{\"scheme\":\"" + scheme + "\",\"patterns\":";
    obs::json::append_number(out, static_cast<double>(pats.size()));
    out += ",\"patterns_per_sec\":";
    obs::json::append_number(out, pps);
    out += ",\"unbounded\":";
    obs::json::append_number(out, static_cast<double>(unbounded));
    out += ",\"toggle_bound\":";
    append_stats(out, toggle_bound);
    out += ",\"stw_lb_ns\":";
    append_stats(out, stw_lb);
    out += ",\"total_scap_mw\":";
    append_stats(out, scap_total);
    out += ",\"certain_launches\":";
    append_stats(out, certain);
    out += ",\"possible_launches\":";
    append_stats(out, possible);
    out += ",\"all_x_worst\":{\"toggle_bound\":";
    obs::json::append_number(out, worst.toggle_bound);
    out += ",\"stw_lb_ns\":";
    obs::json::append_number(out, worst.stw_lb_ns);
    out += ",\"vdd_energy_pj\":[";
    for (std::size_t b = 0; b < worst.vdd_energy_pj.size(); ++b) {
      if (b) out += ',';
      obs::json::append_number(out, worst.vdd_energy_pj[b]);
    }
    out += "],\"vss_energy_pj\":[";
    for (std::size_t b = 0; b < worst.vss_energy_pj.size(); ++b) {
      if (b) out += ',';
      obs::json::append_number(out, worst.vss_energy_pj[b]);
    }
    out += "]}}}";
  } else {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "design: scale %.3f seed %llu: %zu nets, %zu gates, %zu "
                  "flops, %u blocks, depth %u\n",
                  soc_scale, static_cast<unsigned long long>(seed),
                  nl.num_nets(), nl.num_gates(), nl.num_flops(),
                  static_cast<unsigned>(nl.block_count()),
                  facts.levels.max_level);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "dataflow: %zu constant, %zu uncontrollable, %zu "
                  "unobservable net(s), %zu cyclic gate(s)\n",
                  facts.constant_nets, facts.uncontrollable_nets,
                  facts.unobservable_nets, facts.levels.cyclic_gates);
    out += buf;
    print_cost_profile(out, "cc0", cc0);
    print_cost_profile(out, "cc1", cc1);
    print_cost_profile(out, "co", co);
    std::snprintf(buf, sizeof buf,
                  "static screen (%s, %zu random patterns): %.0f "
                  "patterns/sec, %zu unbounded\n",
                  scheme.c_str(), pats.size(), pps, unbounded);
    out += buf;
    print_stats_line(out, "toggle bound", toggle_bound, "");
    print_stats_line(out, "stw lower bound", stw_lb, "ns");
    print_stats_line(out, "scap upper bound", scap_total, "mW");
    print_stats_line(out, "certain launches", certain, "");
    std::snprintf(buf, sizeof buf,
                  "all-X worst case: toggle bound %.0f, stw_lb %.3f ns\n",
                  worst.toggle_bound, worst.stw_lb_ns);
    out += buf;
  }

  if (output_path.empty()) {
    std::cout << out;
    if (!out.empty() && out.back() != '\n') std::cout << '\n';
  } else {
    std::ofstream os(output_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   output_path.c_str());
      return 2;
    }
    os << out;
  }
  return 0;
}
