// scap_lint -- command-line front end of the static-analysis subsystem
// (src/lint/lint.h).
//
// Lints either a structural Verilog netlist (--verilog, parsed in relaxed
// mode so every violation is reported instead of the first one aborting the
// parse) or the generated SOC design (--soc-scale, which also checks the
// stitched scan chains). Reports as human text, JSON, or SARIF 2.1.0.
//
// Exit codes: 0 = no findings at or above --fail-on, 1 = findings,
// 2 = usage or parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.h"
#include "lint/lint.h"
#include "netlist/verilog.h"
#include "soc/generator.h"
#include "util/version.h"

namespace {

using namespace scap;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --verilog FILE     lint a structural Verilog netlist\n"
               "  --soc-scale S      lint the generated SOC at scale S "
               "(default 0.1; used when no --verilog)\n"
               "  --seed N           SOC generator seed (default 2007)\n"
               "  --format FMT       text | json | sarif (default text)\n"
               "  --output FILE      write the report to FILE (default stdout)\n"
               "  --fail-on LEVEL    error | warning | never: findings at or\n"
               "                     above LEVEL exit 1 (default error)\n"
               "  --max-per-rule N   diagnostics retained per rule, 0 = all "
               "(default 25)\n"
               "  --disable RULE     skip a rule id (repeatable)\n"
               "  --baseline FILE    suppress findings listed in FILE "
               "(rule|kind|name per line);\n"
               "                     only *new* findings count toward "
               "--fail-on\n"
               "  --write-baseline FILE\n"
               "                     write the run's findings to FILE in "
               "baseline format and exit 0\n"
               "  --list-rules       print the rule registry and exit\n",
               argv0);
  return 2;
}

void list_rules() {
  for (const lint::RuleInfo& r : lint::all_rules()) {
    std::printf("%-24s %-8s %s\n", std::string(r.id).c_str(),
                lint::severity_name(r.severity), std::string(r.summary).c_str());
  }
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string verilog_path;
  double soc_scale = 0.1;
  std::uint64_t seed = 2007;
  std::string format = "text";
  std::string output_path;
  std::string fail_on = "error";
  std::string baseline_path;
  std::string write_baseline_path;
  lint::LintConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--verilog") {
      verilog_path = value();
    } else if (arg == "--soc-scale") {
      soc_scale = std::atof(value());
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--format") {
      format = value();
    } else if (arg == "--output") {
      output_path = value();
    } else if (arg == "--fail-on") {
      fail_on = value();
    } else if (arg == "--max-per-rule") {
      cfg.max_per_rule = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--disable") {
      cfg.disabled.emplace_back(value());
    } else if (arg == "--baseline") {
      baseline_path = value();
    } else if (arg == "--write-baseline") {
      write_baseline_path = value();
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else if (arg == "--version") {
      std::printf("scap_lint %s\n", scap::kVersion);
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr, "%s: bad --format '%s'\n", argv[0], format.c_str());
    return 2;
  }
  if (fail_on != "error" && fail_on != "warning" && fail_on != "never") {
    std::fprintf(stderr, "%s: bad --fail-on '%s'\n", argv[0], fail_on.c_str());
    return 2;
  }

  // Baselines match retained diagnostics; the per-rule cap would hide
  // findings from the fingerprint match (and from --write-baseline).
  if (!baseline_path.empty() || !write_baseline_path.empty()) {
    cfg.max_per_rule = 0;
  }

  try {
    lint::LintReport rep;
    if (!verilog_path.empty()) {
      const Netlist nl = parse_verilog_relaxed(read_file(verilog_path));
      rep = lint::run(nl, cfg);
    } else {
      SocConfig sc = SocConfig::turbo_eagle_scaled(soc_scale);
      sc.seed = seed;
      const SocDesign soc = build_soc(sc);
      lint::LintInput in;
      in.netlist = &soc.netlist;
      in.scan_chains = soc.scan.chains;
      rep = lint::run(in, cfg);
    }

    if (!write_baseline_path.empty()) {
      std::ofstream os(write_baseline_path, std::ios::binary);
      if (!os) throw std::runtime_error("cannot write " + write_baseline_path);
      os << lint::baseline_from(rep).serialize();
      std::fprintf(stderr, "scap_lint: wrote %zu fingerprint(s) to %s\n",
                   rep.diagnostics.size(), write_baseline_path.c_str());
      return 0;
    }
    if (!baseline_path.empty()) {
      std::vector<std::string> rejects;
      const lint::Baseline base =
          lint::Baseline::parse(read_file(baseline_path), &rejects);
      for (const std::string& r : rejects) {
        std::fprintf(stderr, "scap_lint: %s: unparseable baseline line '%s'\n",
                     baseline_path.c_str(), r.c_str());
      }
      lint::apply_baseline(rep, base);
    }

    std::string text;
    if (format == "json") {
      text = lint::to_json(rep);
    } else if (format == "sarif") {
      text = lint::to_sarif(rep);
    } else {
      text = lint::to_text(rep);
    }
    if (output_path.empty()) {
      std::cout << text;
      if (!text.empty() && text.back() != '\n') std::cout << '\n';
    } else {
      std::ofstream os(output_path, std::ios::binary);
      if (!os) throw std::runtime_error("cannot write " + output_path);
      os << text;
    }

    if (fail_on == "never") return 0;
    if (fail_on == "warning" && rep.errors + rep.warnings > 0) return 1;
    if (fail_on == "error" && rep.has_errors()) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scap_lint: %s\n", e.what());
    return 2;
  }
}
