// scap_fuzz: differential-oracle fuzzing driver.
//
// Runs randomized scenarios through the optimized kernels and the src/ref
// oracles, diffs every enabled pair, and shrinks any divergence to a minimal
// repro, optionally serialized to a corpus directory.
//
// Usage:
//   scap_fuzz [--iterations N] [--seed S] [--corpus-dir DIR] [--no-shrink]
//             [--max-failures N] [--replay FILE]... [--self-test]
//
// Exit codes: 0 = clean (or self-test passed), 1 = divergence found
// (or self-test failed), 2 = usage / I/O error.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ref/fuzz.h"
#include "util/version.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--iterations N] [--seed S] [--corpus-dir DIR] [--no-shrink]\n"
               "       [--max-failures N] [--replay FILE]... [--self-test]\n"
               "       [--print-scenario SEED]\n";
  return 2;
}

int replay_files(const std::vector<std::string>& files) {
  int rc = 0;
  for (const std::string& path : files) {
    std::ifstream is(path);
    if (!is) {
      std::cerr << "scap_fuzz: cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream text;
    text << is.rdbuf();
    scap::ref::Scenario sc;
    try {
      sc = scap::ref::Scenario::parse(text.str());
    } catch (const std::exception& e) {
      std::cerr << "scap_fuzz: " << path << ": " << e.what() << "\n";
      return 2;
    }
    const scap::ref::ScenarioResult r = scap::ref::run_scenario(sc);
    if (r.ok()) {
      std::cout << "[replay] " << path << ": clean (" << sc.enabled_checks()
                << " oracle(s))\n";
    } else {
      rc = 1;
      std::cout << "[replay] " << path << ": " << r.divergences.size()
                << " divergence(s)\n";
      for (const scap::ref::Divergence& d : r.divergences) {
        std::cout << "  [" << d.oracle << "] " << d.detail << "\n";
      }
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  scap::ref::FuzzOptions opt;
  opt.iterations = 100;
  std::vector<std::string> replay;
  bool self_test = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "scap_fuzz: " << what << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    try {
      if (arg == "--iterations") {
        const char* v = next("--iterations");
        if (!v) return 2;
        opt.iterations = std::stoull(v);
      } else if (arg == "--seed") {
        const char* v = next("--seed");
        if (!v) return 2;
        opt.seed = std::stoull(v);
      } else if (arg == "--corpus-dir") {
        const char* v = next("--corpus-dir");
        if (!v) return 2;
        opt.corpus_dir = v;
      } else if (arg == "--max-failures") {
        const char* v = next("--max-failures");
        if (!v) return 2;
        opt.max_failures = std::stoull(v);
      } else if (arg == "--no-shrink") {
        opt.shrink = false;
      } else if (arg == "--replay") {
        const char* v = next("--replay");
        if (!v) return 2;
        replay.push_back(v);
      } else if (arg == "--print-scenario") {
        const char* v = next("--print-scenario");
        if (!v) return 2;
        std::cout << scap::ref::Scenario::random(std::stoull(v)).serialize();
        return 0;
      } else if (arg == "--self-test") {
        self_test = true;
      } else if (arg == "--version") {
        std::cout << "scap_fuzz " << scap::kVersion << "\n";
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::cerr << "scap_fuzz: unknown option " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::cerr << "scap_fuzz: bad value for " << arg << "\n";
      return 2;
    }
  }

  if (self_test) {
    const bool ok = scap::ref::run_self_test(&std::cout);
    std::cout << (ok ? "[self-test] PASS\n" : "[self-test] FAIL\n");
    return ok ? 0 : 1;
  }
  if (!replay.empty()) return replay_files(replay);

  const scap::ref::FuzzStats st = scap::ref::run_fuzz(opt, &std::cout);
  std::cout << "[scap_fuzz] " << st.executed << " scenario(s), "
            << st.failures.size() << " failure(s)\n";
  return st.ok() ? 0 : 1;
}
