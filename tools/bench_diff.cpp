// bench_diff: compare a BENCH_*.json artifact against a committed baseline
// and maintain the bench trajectory ledger.
//
// Flattens both artifacts into named metric rows (obs/bench_compare.h),
// classifies each metric's improvement direction from its name, and fails
// when a directional metric moves the wrong way by more than the relative
// tolerance. Optionally appends one JSONL row per run to a trajectory file
// (bench/history/trajectory.jsonl in this repo) so performance history
// accumulates across PRs.
//
// Usage:
//   bench_diff --current FILE [--baseline FILE] [--tolerance FRAC]
//              [--history FILE] [--label STR] [--warn-only]
//              [--gate-min NAME:VALUE ...] [--write-baseline FILE]
//
//   --current FILE         the freshly produced BENCH_*.json (required)
//   --baseline FILE        committed reference artifact; without it the tool
//                          only flattens/records (nothing to diff)
//   --tolerance FRAC       relative slack, default 0.25 (timings on shared CI
//                          runners are noisy; ratios like *_speedup move less)
//   --history FILE         append one JSONL trajectory row here
//   --label STR            free-form row label (git SHA, "local", ...)
//   --warn-only            report regressions but exit 0 (CI soak mode)
//   --gate-min NAME:VALUE  absolute floor on one current metric (repeatable);
//                          a metric below its floor is a regression, and a
//                          missing metric is a usage error. Unlike the
//                          baseline diff, gates need no baseline artifact --
//                          they pin invariants ("t4 never slower than t1":
//                          rt.sweep.*.t4_speedup:0.95) directly
//   --write-baseline FILE  copy the current artifact to FILE and exit
//
// Exit codes: 0 = ok (or --warn-only), 1 = regression beyond tolerance,
// 2 = usage / parse / I/O error.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/bench_compare.h"
#include "obs/json.h"
#include "obs/report.h"
#include "util/version.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --current FILE [--baseline FILE] [--tolerance FRAC]\n"
               "       [--history FILE] [--label STR] [--warn-only]\n"
               "       [--gate-min NAME:VALUE ...] [--write-baseline FILE]\n",
               argv0);
  return 2;
}

struct MinGate {
  std::string name;
  double floor = 0.0;
};

/// Parse a "NAME:VALUE" gate spec; returns std::nullopt on malformed input.
std::optional<MinGate> parse_gate_min(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return std::nullopt;
  }
  MinGate g;
  g.name = spec.substr(0, colon);
  char* end = nullptr;
  g.floor = std::strtod(spec.c_str() + colon + 1, &end);
  if (!end || *end != '\0') return std::nullopt;
  return g;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::optional<scap::obs::json::Value> load_bench(const std::string& path) {
  const std::optional<std::string> text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::optional<scap::obs::json::Value> v = scap::obs::json::parse(*text);
  if (!v) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path.c_str());
    return std::nullopt;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path, baseline_path, history_path, write_baseline_path;
  std::string label = "local";
  double tolerance = 0.25;
  bool warn_only = false;
  std::vector<MinGate> gates;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--current") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      current_path = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      baseline_path = v;
    } else if (arg == "--tolerance") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      tolerance = std::atof(v);
    } else if (arg == "--history") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      history_path = v;
    } else if (arg == "--label") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      label = v;
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg == "--gate-min") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const std::optional<MinGate> g = parse_gate_min(v);
      if (!g) {
        std::fprintf(stderr, "bench_diff: bad --gate-min spec '%s'\n", v);
        return usage(argv[0]);
      }
      gates.push_back(*g);
    } else if (arg == "--write-baseline") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      write_baseline_path = v;
    } else if (arg == "--version") {
      std::printf("bench_diff %s\n", scap::kVersion);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (current_path.empty() || tolerance <= 0.0) return usage(argv[0]);

  const std::optional<scap::obs::json::Value> current =
      load_bench(current_path);
  if (!current) return 2;

  if (!write_baseline_path.empty()) {
    const std::optional<std::string> text = read_file(current_path);
    if (!text || !scap::obs::write_file(write_baseline_path, *text)) {
      std::fprintf(stderr, "bench_diff: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::printf("bench_diff: baseline written to %s\n",
                write_baseline_path.c_str());
    return 0;
  }

  const std::vector<scap::obs::bench::MetricRow> rows =
      scap::obs::bench::flatten_bench(*current);
  std::string bench_name = "bench";
  if (const scap::obs::json::Value* n = current->find("name");
      n && n->kind == scap::obs::json::Value::Kind::kString) {
    bench_name = n->string;
  }
  std::printf("bench_diff: %s (%zu metrics from %s)\n", bench_name.c_str(),
              rows.size(), current_path.c_str());

  if (!history_path.empty()) {
    std::ofstream os(history_path, std::ios::app);
    if (!os) {
      std::fprintf(stderr, "bench_diff: cannot append to %s\n",
                   history_path.c_str());
      return 2;
    }
    os << scap::obs::bench::trajectory_line(
              bench_name, label,
              static_cast<std::int64_t>(std::time(nullptr)), rows)
       << "\n";
    std::printf("trajectory: appended row to %s\n", history_path.c_str());
  }

  // Absolute floors: substring-matched against the flattened names so
  // "rt.sweep.faultsim_grade.t4_speedup:0.95" catches
  // "gauges.rt.sweep.faultsim_grade.t4_speedup.mean". No baseline needed.
  bool failed = false;
  for (const MinGate& g : gates) {
    std::size_t matched = 0;
    for (const scap::obs::bench::MetricRow& row : rows) {
      if (row.name.find(g.name) == std::string::npos) continue;
      ++matched;
      if (row.value < g.floor) {
        std::printf("GATE  %-56s %10.4g < floor %.4g\n", row.name.c_str(),
                    row.value, g.floor);
        failed = true;
      } else {
        std::printf("gate  %-56s %10.4g >= floor %.4g\n", row.name.c_str(),
                    row.value, g.floor);
      }
    }
    if (matched == 0) {
      std::fprintf(stderr, "bench_diff: --gate-min metric '%s' not found in %s\n",
                   g.name.c_str(), current_path.c_str());
      return 2;
    }
  }

  if (!baseline_path.empty()) {
    const std::optional<scap::obs::json::Value> baseline =
        load_bench(baseline_path);
    if (!baseline) return 2;

    const scap::obs::bench::DiffResult diff =
        scap::obs::bench::compare(*baseline, *current, tolerance);
    std::fputs(scap::obs::bench::format_diff(diff, tolerance).c_str(), stdout);
    if (!diff.ok()) failed = true;
  }

  if (failed) {
    if (warn_only) {
      std::printf("bench_diff: regressions found, exiting 0 (--warn-only)\n");
      return 0;
    }
    return 1;
  }
  return 0;
}
