// bench_diff: compare a BENCH_*.json artifact against a committed baseline
// and maintain the bench trajectory ledger.
//
// Flattens both artifacts into named metric rows (obs/bench_compare.h),
// classifies each metric's improvement direction from its name, and fails
// when a directional metric moves the wrong way by more than the relative
// tolerance. Optionally appends one JSONL row per run to a trajectory file
// (bench/history/trajectory.jsonl in this repo) so performance history
// accumulates across PRs.
//
// Usage:
//   bench_diff --current FILE [--baseline FILE] [--tolerance FRAC]
//              [--history FILE] [--label STR] [--warn-only]
//              [--write-baseline FILE]
//
//   --current FILE         the freshly produced BENCH_*.json (required)
//   --baseline FILE        committed reference artifact; without it the tool
//                          only flattens/records (nothing to diff)
//   --tolerance FRAC       relative slack, default 0.25 (timings on shared CI
//                          runners are noisy; ratios like *_speedup move less)
//   --history FILE         append one JSONL trajectory row here
//   --label STR            free-form row label (git SHA, "local", ...)
//   --warn-only            report regressions but exit 0 (CI soak mode)
//   --write-baseline FILE  copy the current artifact to FILE and exit
//
// Exit codes: 0 = ok (or --warn-only), 1 = regression beyond tolerance,
// 2 = usage / parse / I/O error.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/bench_compare.h"
#include "obs/json.h"
#include "obs/report.h"
#include "util/version.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --current FILE [--baseline FILE] [--tolerance FRAC]\n"
               "       [--history FILE] [--label STR] [--warn-only]\n"
               "       [--write-baseline FILE]\n",
               argv0);
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::optional<scap::obs::json::Value> load_bench(const std::string& path) {
  const std::optional<std::string> text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::optional<scap::obs::json::Value> v = scap::obs::json::parse(*text);
  if (!v) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path.c_str());
    return std::nullopt;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path, baseline_path, history_path, write_baseline_path;
  std::string label = "local";
  double tolerance = 0.25;
  bool warn_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--current") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      current_path = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      baseline_path = v;
    } else if (arg == "--tolerance") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      tolerance = std::atof(v);
    } else if (arg == "--history") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      history_path = v;
    } else if (arg == "--label") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      label = v;
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg == "--write-baseline") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      write_baseline_path = v;
    } else if (arg == "--version") {
      std::printf("bench_diff %s\n", scap::kVersion);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (current_path.empty() || tolerance <= 0.0) return usage(argv[0]);

  const std::optional<scap::obs::json::Value> current =
      load_bench(current_path);
  if (!current) return 2;

  if (!write_baseline_path.empty()) {
    const std::optional<std::string> text = read_file(current_path);
    if (!text || !scap::obs::write_file(write_baseline_path, *text)) {
      std::fprintf(stderr, "bench_diff: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::printf("bench_diff: baseline written to %s\n",
                write_baseline_path.c_str());
    return 0;
  }

  const std::vector<scap::obs::bench::MetricRow> rows =
      scap::obs::bench::flatten_bench(*current);
  std::string bench_name = "bench";
  if (const scap::obs::json::Value* n = current->find("name");
      n && n->kind == scap::obs::json::Value::Kind::kString) {
    bench_name = n->string;
  }
  std::printf("bench_diff: %s (%zu metrics from %s)\n", bench_name.c_str(),
              rows.size(), current_path.c_str());

  if (!history_path.empty()) {
    std::ofstream os(history_path, std::ios::app);
    if (!os) {
      std::fprintf(stderr, "bench_diff: cannot append to %s\n",
                   history_path.c_str());
      return 2;
    }
    os << scap::obs::bench::trajectory_line(
              bench_name, label,
              static_cast<std::int64_t>(std::time(nullptr)), rows)
       << "\n";
    std::printf("trajectory: appended row to %s\n", history_path.c_str());
  }

  if (baseline_path.empty()) return 0;
  const std::optional<scap::obs::json::Value> baseline =
      load_bench(baseline_path);
  if (!baseline) return 2;

  const scap::obs::bench::DiffResult diff =
      scap::obs::bench::compare(*baseline, *current, tolerance);
  std::fputs(scap::obs::bench::format_diff(diff, tolerance).c_str(), stdout);
  if (!diff.ok()) {
    if (warn_only) {
      std::printf("bench_diff: regressions found, exiting 0 (--warn-only)\n");
      return 0;
    }
    return 1;
  }
  return 0;
}
