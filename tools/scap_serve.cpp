// scap_serve: the long-lived SCAP screening daemon.
//
// Loads and finalizes designs on demand (LRU content-hash cache), keeps
// per-design pools of warm analyzer workspaces, and serves screen_static /
// screen_exact / scap_profile / fault_grade requests over a length-prefixed
// binary protocol on a Unix-domain (and optionally loopback TCP) socket,
// micro-batching concurrent clients into single rt-pool dispatches.
//
// Usage:
//   scap_serve --socket PATH [--tcp PORT] [--threads N] [--max-designs N]
//              [--queue N] [--queue-mb MB] [--batch N] [--journal PATH]
//   scap_serve --replay JOURNAL
//
// The daemon runs until SIGTERM/SIGINT, then drains: every admitted request
// is answered and journaled before exit (exit code 0). --replay re-executes
// a captured journal offline and verifies each response is bit-identical to
// what the daemon originally sent (exit 0 = all match, 1 = mismatch).
//
// Exit codes: 0 = clean shutdown / replay match, 1 = replay mismatch,
// 2 = usage or startup error.
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>

#include "rt/thread_pool.h"
#include "serve/core.h"
#include "serve/journal.h"
#include "serve/server.h"
#include "util/version.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --socket PATH [--tcp PORT] [--threads N] [--max-designs N]\n"
         "       [--queue N] [--queue-mb MB] [--batch N] [--journal PATH]\n"
         "   or: " << argv0 << " --replay JOURNAL\n";
  return 2;
}

int replay_main(const std::string& path) {
  std::string err;
  const std::vector<scap::serve::JournalRecord> records =
      scap::serve::read_journal_file(path, &err);
  if (!err.empty()) {
    std::cerr << "scap_serve: " << err << "\n";
    return 2;
  }
  scap::serve::ServeCore core;
  const scap::serve::ReplayResult res =
      scap::serve::replay_journal(records, core);
  std::cout << "[replay] " << res.records << " record(s), " << res.mismatches
            << " mismatch(es)\n";
  if (!res.ok()) {
    std::cout << "  first: " << res.detail << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  scap::serve::ServerOptions opt;
  std::string replay;
  std::size_t threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "scap_serve: " << what << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    try {
      if (arg == "--socket") {
        const char* v = next("--socket");
        if (!v) return 2;
        opt.unix_path = v;
      } else if (arg == "--tcp") {
        const char* v = next("--tcp");
        if (!v) return 2;
        opt.tcp_port = std::stoi(v);
      } else if (arg == "--threads") {
        const char* v = next("--threads");
        if (!v) return 2;
        threads = std::stoull(v);
      } else if (arg == "--max-designs") {
        const char* v = next("--max-designs");
        if (!v) return 2;
        opt.max_designs = std::stoull(v);
      } else if (arg == "--queue") {
        const char* v = next("--queue");
        if (!v) return 2;
        opt.queue_capacity = std::stoull(v);
      } else if (arg == "--queue-mb") {
        const char* v = next("--queue-mb");
        if (!v) return 2;
        opt.queue_max_bytes = std::stoull(v) << 20;
      } else if (arg == "--batch") {
        const char* v = next("--batch");
        if (!v) return 2;
        opt.batch_max = std::stoull(v);
      } else if (arg == "--journal") {
        const char* v = next("--journal");
        if (!v) return 2;
        opt.journal_path = v;
      } else if (arg == "--replay") {
        const char* v = next("--replay");
        if (!v) return 2;
        replay = v;
      } else if (arg == "--version") {
        std::cout << "scap_serve " << scap::kVersion << "\n";
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::cerr << "scap_serve: unknown option " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::cerr << "scap_serve: bad value for " << arg << "\n";
      return 2;
    }
  }

  if (!replay.empty()) return replay_main(replay);
  if (opt.unix_path.empty() && opt.tcp_port < 0) return usage(argv[0]);

  // The daemon's concurrency is fixed here, at startup: --threads rebuilds
  // the global pool, otherwise the startup-cached SCAP_THREADS / hardware
  // default applies (rt/thread_pool.h).
  if (threads > 0) scap::rt::ThreadPool::set_global_concurrency(threads);

  // Block the shutdown signals in main (and thus in every thread the server
  // spawns, which inherit the mask) and sigwait for them: the drain runs on
  // this thread in a normal context, not in a signal handler.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  scap::serve::Server server(opt);
  std::string err;
  if (!server.start(&err)) {
    std::cerr << "scap_serve: " << err << "\n";
    return 2;
  }
  std::cout << "[scap_serve] listening"
            << (opt.unix_path.empty() ? "" : " on " + opt.unix_path);
  if (server.tcp_port() >= 0) {
    std::cout << " (tcp 127.0.0.1:" << server.tcp_port() << ")";
  }
  std::cout << ", threads=" << scap::rt::concurrency()
            << ", max-designs=" << opt.max_designs
            << ", queue=" << opt.queue_capacity
            << ", batch=" << opt.batch_max << "\n"
            << std::flush;

  int sig = 0;
  sigwait(&set, &sig);
  std::cout << "[scap_serve] caught " << strsignal(sig) << ", draining\n";
  server.stop();
  std::cout << "[scap_serve] clean shutdown\n";
  return 0;
}
