// scap_bench_client: concurrent load harness for the scap_serve daemon.
//
// Spawns N submitter threads, each with its own connection, and drives the
// daemon with screening requests over a shared design recipe. Reports p50 /
// p90 / p99 / max request latency and served patterns/sec, then (unless
// --no-baseline) measures the in-process cost the daemon replaces -- a fresh
// PatternAnalyzer per request over the same workload ("warm": design built
// once) and the full materialize-per-request path ("cold") -- and writes the
// whole comparison plus the daemon's serve.* counters to BENCH_<label>.json
// (obs/report.h schema, $SCAP_METRICS_DIR aware) for the bench-trajectory
// ledger.
//
// Usage:
//   scap_bench_client --socket PATH [options]
//   scap_bench_client --tcp PORT [--host H] [options]
//
// Options:
//   --clients N      concurrent submitter threads (default 8)
//   --requests N     requests per client (default 32)
//   --patterns N     patterns per request (default 16)
//   --op OP          profile | static | exact | grade (default profile)
//   --mode M         closed (back-to-back) | open (paced; default closed)
//   --rate R         open-loop target requests/sec per client (default 50)
//   --design-seed S  scenario soc_seed (default 11)
//   --scale F        scenario flops_scale (default 0.25)
//   --hot-block B    hot block for screen ops (default 0)
//   --threshold MW   SCAP threshold for screen ops (default 1.0)
//   --wait-s SEC     max seconds to wait for the daemon (default 10)
//   --label NAME     artifact name: BENCH_<NAME>.json (default serve)
//   --no-baseline    skip the in-process baseline measurement
//
// Exit codes: 0 = ran and got replies, 1 = no successful replies,
// 2 = usage / connect error.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/pattern_sim.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "ref/fuzz.h"
#include "ref/scenario.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/kv.h"
#include "util/version.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string socket;
  std::string host = "127.0.0.1";
  int tcp_port = -1;
  std::size_t clients = 8;
  std::size_t requests = 32;
  std::size_t patterns = 16;
  scap::serve::Op op = scap::serve::Op::kScapProfile;
  bool open_loop = false;
  double rate = 50.0;
  std::uint64_t design_seed = 11;
  double scale = 0.25;
  std::uint32_t hot_block = 0;
  double threshold_mw = 1.0;
  double wait_s = 10.0;
  std::string label = "serve";
  bool baseline = true;
};

/// Per-submitter tallies; merged after join.
struct ClientResult {
  std::vector<double> latencies_ms;  ///< every answered request (incl. busy)
  std::size_t ok = 0;
  std::size_t busy = 0;
  std::size_t error_replies = 0;
  std::size_t transport_errors = 0;
  std::size_t ok_patterns = 0;
};

int usage(const char* argv0, int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: " << argv0
      << " (--socket PATH | --tcp PORT [--host H])\n"
         "       [--clients N] [--requests N] [--patterns N]\n"
         "       [--op profile|static|exact|grade] [--mode closed|open]\n"
         "       [--rate R] [--design-seed S] [--scale F] [--hot-block B]\n"
         "       [--threshold MW] [--wait-s SEC] [--label NAME]\n"
         "       [--no-baseline]\n";
  return code;
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// q-th quantile of a sorted sample (nearest-rank on the index scale).
double pct(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(std::llround(pos));
  return sorted[std::min(idx, sorted.size() - 1)];
}

scap::serve::Client connect(const Options& opt, std::string* err) {
  if (!opt.socket.empty()) {
    return scap::serve::Client::connect_unix(opt.socket, err);
  }
  return scap::serve::Client::connect_tcp(opt.host, opt.tcp_port, err);
}

/// Poll until the daemon answers a ping (it may still be starting up).
bool wait_ready(const Options& opt) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opt.wait_s));
  do {
    std::string err;
    scap::serve::Client c = connect(opt, &err);
    if (c.connected()) {
      scap::serve::Request ping;
      ping.op = scap::serve::Op::kPing;
      scap::serve::Reply reply;
      if (c.call(ping, &reply, &err) && reply.op == scap::serve::Op::kOk) {
        return true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  } while (Clock::now() < deadline);
  return false;
}

void run_submitter(const Options& opt, const std::string& design,
                   std::uint32_t num_vars,
                   const std::vector<std::vector<scap::Pattern>>& workload,
                   ClientResult* out) {
  std::string err;
  scap::serve::Client c = connect(opt, &err);
  if (!c.connected()) {
    out->transport_errors = opt.requests;
    return;
  }
  const Clock::time_point start = Clock::now();
  for (std::size_t r = 0; r < opt.requests; ++r) {
    if (opt.open_loop && opt.rate > 0.0) {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(r) / opt.rate)));
    }
    scap::serve::Request req;
    req.op = opt.op;
    req.hot_block = opt.hot_block;
    req.threshold_mw = opt.threshold_mw;
    req.design = design;
    req.num_vars = num_vars;
    req.patterns = workload[r];
    scap::serve::Reply reply;
    const Clock::time_point t0 = Clock::now();
    if (!c.call(req, &reply, &err)) {
      ++out->transport_errors;
      return;  // connection is gone; nothing more this submitter can do
    }
    out->latencies_ms.push_back(ms_between(t0, Clock::now()));
    switch (reply.op) {
      case scap::serve::Op::kOk:
        ++out->ok;
        out->ok_patterns += req.patterns.size();
        break;
      case scap::serve::Op::kBusy:
        ++out->busy;
        break;
      default:
        ++out->error_replies;
        break;
    }
  }
}

/// Pull the daemon's counter snapshot and fold the serve.* counters into the
/// local registry so they land in the bench artifact alongside client-side
/// numbers.
void fold_server_stats(const Options& opt) {
  std::string err;
  scap::serve::Client c = connect(opt, &err);
  if (!c.connected()) return;
  scap::serve::Request req;
  req.op = scap::serve::Op::kStats;
  scap::serve::Reply reply;
  if (!c.call(req, &reply, &err) || reply.op != scap::serve::Op::kOk) return;
  try {
    const scap::util::KvDoc doc = scap::util::KvDoc::parse(
        std::string(reply.payload.begin(), reply.payload.end()));
    for (const auto& [key, value] : doc.entries()) {
      if (key.rfind("serve.", 0) != 0) continue;
      const std::uint64_t v = doc.get_u64(key, 0);
      scap::obs::Registry::global().counter(key).add(v);
    }
  } catch (const std::exception&) {
    // Unparsable stats payload: skip the fold, keep the client-side report.
  }
}

/// One in-process request: what a caller without the daemon pays. `setup`
/// already holds the built design ("warm"); the "cold" variant re-pays
/// materialization too and is measured by the caller.
void inproc_request(const scap::ref::ScenarioSetup& setup,
                    std::span<const scap::Pattern> patterns,
                    scap::serve::Op op) {
  const scap::PatternAnalyzer analyzer(setup.soc, setup.lib);
  for (const scap::Pattern& p : patterns) {
    if (op == scap::serve::Op::kScreenStatic) {
      analyzer.screen_static(setup.ctx, p);
    } else {
      analyzer.analyze_scap(setup.ctx, p);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "scap_bench_client: " << what << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    try {
      if (arg == "--socket") {
        const char* v = next("--socket");
        if (!v) return 2;
        opt.socket = v;
      } else if (arg == "--tcp") {
        const char* v = next("--tcp");
        if (!v) return 2;
        opt.tcp_port = std::stoi(v);
      } else if (arg == "--host") {
        const char* v = next("--host");
        if (!v) return 2;
        opt.host = v;
      } else if (arg == "--clients") {
        const char* v = next("--clients");
        if (!v) return 2;
        opt.clients = std::stoull(v);
      } else if (arg == "--requests") {
        const char* v = next("--requests");
        if (!v) return 2;
        opt.requests = std::stoull(v);
      } else if (arg == "--patterns") {
        const char* v = next("--patterns");
        if (!v) return 2;
        opt.patterns = std::stoull(v);
      } else if (arg == "--op") {
        const char* v = next("--op");
        if (!v) return 2;
        const std::string name = v;
        if (name == "profile") {
          opt.op = scap::serve::Op::kScapProfile;
        } else if (name == "static") {
          opt.op = scap::serve::Op::kScreenStatic;
        } else if (name == "exact") {
          opt.op = scap::serve::Op::kScreenExact;
        } else if (name == "grade") {
          opt.op = scap::serve::Op::kFaultGrade;
        } else {
          std::cerr << "scap_bench_client: unknown op " << name << "\n";
          return 2;
        }
      } else if (arg == "--mode") {
        const char* v = next("--mode");
        if (!v) return 2;
        const std::string name = v;
        if (name == "closed") {
          opt.open_loop = false;
        } else if (name == "open") {
          opt.open_loop = true;
        } else {
          std::cerr << "scap_bench_client: unknown mode " << name << "\n";
          return 2;
        }
      } else if (arg == "--rate") {
        const char* v = next("--rate");
        if (!v) return 2;
        opt.rate = std::stod(v);
      } else if (arg == "--design-seed") {
        const char* v = next("--design-seed");
        if (!v) return 2;
        opt.design_seed = std::stoull(v);
      } else if (arg == "--scale") {
        const char* v = next("--scale");
        if (!v) return 2;
        opt.scale = std::stod(v);
      } else if (arg == "--hot-block") {
        const char* v = next("--hot-block");
        if (!v) return 2;
        opt.hot_block = static_cast<std::uint32_t>(std::stoul(v));
      } else if (arg == "--threshold") {
        const char* v = next("--threshold");
        if (!v) return 2;
        opt.threshold_mw = std::stod(v);
      } else if (arg == "--wait-s") {
        const char* v = next("--wait-s");
        if (!v) return 2;
        opt.wait_s = std::stod(v);
      } else if (arg == "--label") {
        const char* v = next("--label");
        if (!v) return 2;
        opt.label = v;
      } else if (arg == "--no-baseline") {
        opt.baseline = false;
      } else if (arg == "--version") {
        std::cout << "scap_bench_client " << scap::kVersion << "\n";
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        return usage(argv[0], 0);
      } else {
        std::cerr << "scap_bench_client: unknown option " << arg << "\n";
        return usage(argv[0], 2);
      }
    } catch (const std::exception&) {
      std::cerr << "scap_bench_client: bad value for " << arg << "\n";
      return 2;
    }
  }
  if (opt.socket.empty() && opt.tcp_port < 0) return usage(argv[0], 2);
  if (opt.clients == 0 || opt.requests == 0 || opt.patterns == 0) {
    std::cerr << "scap_bench_client: --clients/--requests/--patterns must be "
                 ">= 1\n";
    return 2;
  }

  scap::obs::RunReport report;
  report.name = opt.label;
  report.info = {
      {"tool", "scap_bench_client"},
      {"op", scap::serve::op_name(opt.op)},
      {"clients", std::to_string(opt.clients)},
      {"requests_per_client", std::to_string(opt.requests)},
      {"patterns_per_request", std::to_string(opt.patterns)},
      {"mode", opt.open_loop ? "open" : "closed"},
      {"design_seed", std::to_string(opt.design_seed)},
  };
  scap::obs::Registry::global().reset();

  // --- setup: build the shared recipe + workload locally -------------------
  const Clock::time_point setup_t0 = Clock::now();
  scap::ref::Scenario recipe;
  recipe.name = "bench_client";
  recipe.soc_seed = opt.design_seed;
  recipe.flops_scale = opt.scale;
  recipe.num_patterns = 0;  // patterns travel with each request, not the recipe
  const std::string design = recipe.serialize();
  const scap::ref::ScenarioSetup setup = scap::ref::materialize_scenario(recipe);
  const std::uint32_t num_vars =
      static_cast<std::uint32_t>(setup.ctx.num_vars());
  if (opt.hot_block >= setup.soc.netlist.block_count()) {
    std::cerr << "scap_bench_client: --hot-block " << opt.hot_block
              << " out of range (design has "
              << setup.soc.netlist.block_count() << " blocks)\n";
    return 2;
  }

  // Distinct deterministic pattern sets per (client, request) so the daemon
  // sees real per-request variety; pre-generated so submitter threads spend
  // their time submitting.
  std::vector<std::vector<std::vector<scap::Pattern>>> workload(opt.clients);
  for (std::size_t c = 0; c < opt.clients; ++c) {
    workload[c].reserve(opt.requests);
    for (std::size_t r = 0; r < opt.requests; ++r) {
      const std::uint64_t seed = 1 + c * opt.requests + r;
      workload[c].push_back(
          scap::random_pattern_set(opt.patterns, num_vars, seed).patterns);
    }
  }

  if (!wait_ready(opt)) {
    std::cerr << "scap_bench_client: daemon not reachable within "
              << opt.wait_s << "s\n";
    return 2;
  }
  report.phases.push_back({"setup", ms_between(setup_t0, Clock::now()),
                           scap::obs::Registry::global().snapshot_and_reset()});

  // --- load: N concurrent submitters ---------------------------------------
  std::vector<ClientResult> results(opt.clients);
  const Clock::time_point load_t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    for (std::size_t c = 0; c < opt.clients; ++c) {
      threads.emplace_back(run_submitter, std::cref(opt), std::cref(design),
                           num_vars, std::cref(workload[c]), &results[c]);
    }
    for (std::thread& t : threads) t.join();
  }
  const double load_ms = ms_between(load_t0, Clock::now());

  ClientResult total;
  for (const ClientResult& r : results) {
    total.ok += r.ok;
    total.busy += r.busy;
    total.error_replies += r.error_replies;
    total.transport_errors += r.transport_errors;
    total.ok_patterns += r.ok_patterns;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              r.latencies_ms.begin(), r.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  const double p50 = pct(total.latencies_ms, 0.50);
  const double p90 = pct(total.latencies_ms, 0.90);
  const double p99 = pct(total.latencies_ms, 0.99);
  const double lat_max =
      total.latencies_ms.empty() ? 0.0 : total.latencies_ms.back();
  const double served_pps =
      load_ms > 0.0 ? static_cast<double>(total.ok_patterns) * 1e3 / load_ms
                    : 0.0;

  scap::obs::count("serve.client.ok", total.ok);
  scap::obs::count("serve.client.busy", total.busy);
  scap::obs::count("serve.client.error_replies", total.error_replies);
  scap::obs::count("serve.client.transport_errors", total.transport_errors);
  scap::obs::count("serve.client.ok_patterns", total.ok_patterns);
  scap::obs::observe("serve.client.latency_p50_ms", p50);
  scap::obs::observe("serve.client.latency_p90_ms", p90);
  scap::obs::observe("serve.client.latency_p99_ms", p99);
  scap::obs::observe("serve.client.latency_max_ms", lat_max);
  scap::obs::observe("serve.client.patterns_per_sec", served_pps);
  fold_server_stats(opt);
  report.phases.push_back({"load", load_ms,
                           scap::obs::Registry::global().snapshot_and_reset()});

  std::cout << "[load] op=" << scap::serve::op_name(opt.op)
            << " clients=" << opt.clients << " ok=" << total.ok
            << " busy=" << total.busy << " err=" << total.error_replies
            << " transport=" << total.transport_errors << "\n"
            << "[load] latency ms p50=" << p50 << " p90=" << p90
            << " p99=" << p99 << " max=" << lat_max << "\n"
            << "[load] served " << total.ok_patterns << " pattern(s) in "
            << load_ms << " ms = " << served_pps << " patterns/sec\n";

  // --- baseline: the in-process cost the daemon replaces -------------------
  if (opt.baseline) {
    const Clock::time_point base_t0 = Clock::now();
    const std::size_t total_requests = opt.clients * opt.requests;

    // Warm: fresh analyzer per request, design already built.
    const std::size_t warm_n = std::min<std::size_t>(total_requests, 64);
    const Clock::time_point warm_t0 = Clock::now();
    for (std::size_t i = 0; i < warm_n; ++i) {
      const auto& pats = workload[i % opt.clients][i / opt.clients % opt.requests];
      inproc_request(setup, pats, opt.op);
    }
    const double warm_ms = ms_between(warm_t0, Clock::now());
    const double warm_pps =
        warm_ms > 0.0
            ? static_cast<double>(warm_n * opt.patterns) * 1e3 / warm_ms
            : 0.0;

    // Cold: materialize + analyzer per request (the literal status quo for a
    // caller that owns nothing between requests).
    const std::size_t cold_n = std::min<std::size_t>(total_requests, 8);
    const Clock::time_point cold_t0 = Clock::now();
    for (std::size_t i = 0; i < cold_n; ++i) {
      const scap::ref::ScenarioSetup fresh =
          scap::ref::materialize_scenario(recipe);
      inproc_request(fresh, workload[0][i % opt.requests], opt.op);
    }
    const double cold_ms = ms_between(cold_t0, Clock::now());
    const double cold_pps =
        cold_ms > 0.0
            ? static_cast<double>(cold_n * opt.patterns) * 1e3 / cold_ms
            : 0.0;

    const double speedup = warm_pps > 0.0 ? served_pps / warm_pps : 0.0;
    scap::obs::observe("serve.client.inproc_patterns_per_sec", warm_pps);
    scap::obs::observe("serve.client.inproc_cold_patterns_per_sec", cold_pps);
    scap::obs::observe("serve.client.vs_inproc_speedup", speedup);
    report.phases.push_back(
        {"baseline", ms_between(base_t0, Clock::now()),
         scap::obs::Registry::global().snapshot_and_reset()});

    std::cout << "[baseline] in-process warm " << warm_pps
              << " patterns/sec, cold " << cold_pps
              << " patterns/sec; served/warm speedup = " << speedup << "\n";
  }

  const std::string path = scap::obs::bench_artifact_path(opt.label);
  if (!scap::obs::write_file(path, scap::obs::to_json(report))) {
    std::cerr << "scap_bench_client: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "[artifact] " << path << "\n";

  return total.ok > 0 ? 0 : 1;
}
